/**
 * @file
 * Tests for the "fleet" sweep domain: the trace-driven job replay over
 * regional intensity series, its policy x region x lifetime scenario
 * grid, and the engine contract -- shards merge byte-identically to
 * the single-process run at any shard and thread count, because every
 * job seeds its own RNG stream from its index.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fleet/replay.h"
#include "sweep/domains.h"
#include "sweep/engine.h"
#include "sweep/plan.h"
#include "util/parallel.h"
#include "util/simd.h"

namespace act::sweep {
namespace {

/** A miniature examples/configs/sweep_fleet.json: all four policies
 *  over a dirty solar region and a clean flat one, small enough to
 *  replay in milliseconds but spanning several chunks. */
SweepPlan
fleetPlan()
{
    const std::string text = R"({
        "domain": "fleet",
        "items": 2000,
        "grain": 256,
        "seed": 42,
        "config": {
            "pue": 1.3,
            "lifetime_years": [4],
            "policies": ["uniform", "greedy", "deadline", "migrate"],
            "deadline_samples": 6,
            "regions": [
                {"name": "tw-solar", "profile": "solar",
                 "region": "Taiwan", "share": 0.25},
                {"name": "is-flat", "profile": "flat",
                 "region": "Iceland"}
            ],
            "jobs": {"horizon_hours": 48, "max_slack_hours": 12}
        }
    })";
    SweepPlan plan = sweepPlanFromJson(config::JsonValue::parse(text));
    findDomain(plan.domain).prepare(plan);
    return plan;
}

class SweepFleetDomainTest : public ::testing::Test
{
  protected:
    void
    TearDown() override
    {
        util::setThreadCount(0);
        util::setSimdLevel(util::detectedSimdLevel());
    }
};

/** Every SIMD level this binary can safely execute. */
std::vector<util::SimdLevel>
availableSimdLevels()
{
    std::vector<util::SimdLevel> levels = {util::SimdLevel::Scalar};
    if (util::simdLevelAvailable(util::SimdLevel::Sse2))
        levels.push_back(util::SimdLevel::Sse2);
    if (util::simdLevelAvailable(util::SimdLevel::Avx2))
        levels.push_back(util::SimdLevel::Avx2);
    return levels;
}

/** Build a resolved FleetSetup straight from plan JSON. */
fleet::FleetSetup
setupFromText(const std::string &text)
{
    SweepPlan plan = sweepPlanFromJson(config::JsonValue::parse(text));
    findDomain(plan.domain).prepare(plan);
    return fleet::fleetSetupFromJson(plan.config, plan.seed);
}

/** Require two replay results to agree in every last bit: EXPECT_EQ
 *  on the doubles, no tolerances (DESIGN.md §11). */
void
expectBitIdentical(const std::vector<fleet::FleetAccumulator> &actual,
                   const std::vector<fleet::FleetAccumulator> &expected,
                   const std::string &label)
{
    ASSERT_EQ(actual.size(), expected.size()) << label;
    for (std::size_t s = 0; s < actual.size(); ++s) {
        const fleet::FleetAccumulator &a = actual[s];
        const fleet::FleetAccumulator &e = expected[s];
        EXPECT_EQ(a.jobs, e.jobs) << label << " scenario " << s;
        EXPECT_EQ(a.deferred, e.deferred) << label << " scenario " << s;
        EXPECT_EQ(a.migrated, e.migrated) << label << " scenario " << s;
        EXPECT_EQ(a.operational_g, e.operational_g)
            << label << " scenario " << s;
        EXPECT_EQ(a.embodied_g, e.embodied_g)
            << label << " scenario " << s;
        EXPECT_EQ(a.energy_kwh, e.energy_kwh)
            << label << " scenario " << s;
        EXPECT_EQ(a.busy_hours, e.busy_hours)
            << label << " scenario " << s;
        EXPECT_EQ(a.baseline_g, e.baseline_g)
            << label << " scenario " << s;
    }
}

TEST_F(SweepFleetDomainTest, DomainIsRegistered)
{
    bool found = false;
    for (const std::string_view name : domainNames())
        found = found || name == "fleet";
    EXPECT_TRUE(found);
    EXPECT_FALSE(findDomain("fleet").description.empty());
}

TEST_F(SweepFleetDomainTest, PrepareKeepsTheGrainPinned)
{
    // The per-chunk accumulator sums make the chunk layout observable
    // in the last ulp, so prepare must honour a pinned grain and fill
    // an absolute (not thread-adaptive) default.
    EXPECT_EQ(fleetPlan().grain, 256u);

    SweepPlan defaulted = sweepPlanFromJson(config::JsonValue::parse(
        R"({"domain": "fleet", "config": {
            "regions": [{"profile": "flat", "region": "Iceland"}]}})"));
    findDomain(defaulted.domain).prepare(defaulted);
    EXPECT_EQ(defaulted.grain, 8192u);
    EXPECT_GT(defaulted.items, 0u);
}

TEST_F(SweepFleetDomainTest,
       ShardedMergeIsByteIdenticalToSingleProcess)
{
    const SweepPlan plan = fleetPlan();
    const Domain &domain = findDomain(plan.domain);

    util::setThreadCount(1);
    const std::string reference =
        fullSweepResult(plan, domain.evaluator(plan)).dump();

    for (const std::size_t threads : {1u, 2u, 7u}) {
        util::setThreadCount(threads);
        EXPECT_EQ(fullSweepResult(plan, domain.evaluator(plan)).dump(),
                  reference)
            << "single-process, " << threads << " threads";
        for (const std::size_t shard_count : {1u, 3u}) {
            std::vector<ShardResult> partials;
            for (std::size_t i = 0; i < shard_count; ++i) {
                // Round-trip every partial through its file format,
                // exactly as the multi-process path would.
                const ShardResult partial = runShardedSweep(
                    plan, {shard_count, i}, domain.evaluator(plan));
                partials.push_back(
                    shardResultFromJson(toJson(partial)));
            }
            EXPECT_EQ(mergeShards(partials).dump(), reference)
                << shard_count << " shards, " << threads
                << " threads";
        }
    }
}

TEST_F(SweepFleetDomainTest, PlacementGroupsMatchPerScenarioOracle)
{
    // A policy x region x lifetime grid with three lifetimes, so each
    // placement group fans out to several scenarios; the batched
    // replayJobs() must match the retained per-scenario scalar oracle
    // bit-for-bit at every SIMD level, over block-ragged ranges
    // (1500 = 2 x 512 + 476) and a mid-stream offset.
    const fleet::FleetSetup setup = setupFromText(R"({
        "domain": "fleet",
        "items": 1500,
        "seed": 42,
        "config": {
            "pue": 1.3,
            "lifetime_years": [2, 4, 6],
            "policies": ["uniform", "greedy", "deadline", "migrate"],
            "deadline_samples": 6,
            "regions": [
                {"name": "tw-solar", "profile": "solar",
                 "region": "Taiwan", "share": 0.25},
                {"name": "is-flat", "profile": "flat",
                 "region": "Iceland"}
            ],
            "jobs": {"horizon_hours": 48, "max_slack_hours": 12}
        }
    })");
    ASSERT_EQ(setup.scenarios.size(), 24u);

    const util::IndexRange ranges[] = {{0, 1500}, {237, 749},
                                       {1499, 1500}};
    for (const util::IndexRange range : ranges) {
        const std::vector<fleet::FleetAccumulator> expected =
            fleet::replayJobsOracle(setup, range);
        for (const util::SimdLevel level : availableSimdLevels()) {
            util::setSimdLevel(level);
            expectBitIdentical(
                fleet::replayJobs(setup, range), expected,
                std::string(util::simdLevelName(level)) + " range [" +
                    std::to_string(range.begin) + ", " +
                    std::to_string(range.end) + ")");
        }
        util::setSimdLevel(util::detectedSimdLevel());
    }
}

TEST_F(SweepFleetDomainTest, ZeroSlackStreamMatchesOracle)
{
    // max_slack_hours 0 collapses every shift window to width one
    // (the batched fast path: no argmin at all); migration across
    // regions at shift 0 must still match the oracle exactly.
    const fleet::FleetSetup setup = setupFromText(R"({
        "domain": "fleet",
        "items": 800,
        "seed": 7,
        "config": {
            "lifetime_years": [3, 5],
            "policies": ["uniform", "greedy", "deadline", "migrate"],
            "regions": [
                {"name": "tw-solar", "profile": "solar",
                 "region": "Taiwan", "share": 0.25},
                {"name": "is-flat", "profile": "flat",
                 "region": "Iceland"}
            ],
            "jobs": {"horizon_hours": 48, "max_slack_hours": 0}
        }
    })");
    const std::vector<fleet::FleetAccumulator> expected =
        fleet::replayJobsOracle(setup, {0, 800});
    for (const util::SimdLevel level : availableSimdLevels()) {
        util::setSimdLevel(level);
        expectBitIdentical(fleet::replayJobs(setup, {0, 800}),
                           expected,
                           std::string("zero-slack ") +
                               util::simdLevelName(level));
    }
}

TEST_F(SweepFleetDomainTest, MergedTotalsCoverEveryJobOnce)
{
    const SweepPlan plan = fleetPlan();
    const Domain &domain = findDomain(plan.domain);
    const config::JsonValue doc =
        fullSweepResult(plan, domain.evaluator(plan));
    const std::vector<fleet::FleetAccumulator> totals =
        fleetResultFromPayloads(plan, doc.at("results").asArray());

    // 4 policies x 2 regions x 1 lifetime.
    ASSERT_EQ(totals.size(), 8u);
    for (const fleet::FleetAccumulator &acc : totals) {
        EXPECT_EQ(acc.jobs, plan.items);
        EXPECT_LE(acc.deferred, acc.jobs);
        EXPECT_LE(acc.migrated, acc.jobs);
        EXPECT_GT(acc.operational_g, 0.0);
        EXPECT_GT(acc.embodied_g, 0.0);
        EXPECT_GT(acc.energy_kwh, 0.0);
        EXPECT_GT(acc.busy_hours, 0.0);
        // The counterfactual never beats the chosen placement.
        EXPECT_LE(acc.operational_g, acc.baseline_g);
    }
}

TEST_F(SweepFleetDomainTest, PoliciesBehaveAsDocumented)
{
    const SweepPlan plan = fleetPlan();
    const Domain &domain = findDomain(plan.domain);
    const config::JsonValue doc =
        fullSweepResult(plan, domain.evaluator(plan));
    const std::vector<fleet::FleetAccumulator> totals =
        fleetResultFromPayloads(plan, doc.at("results").asArray());
    const fleet::FleetSetup setup =
        fleet::fleetSetupFromJson(plan.config, plan.seed);
    ASSERT_EQ(setup.scenarios.size(), totals.size());

    for (std::size_t s = 0; s < totals.size(); ++s) {
        const fleet::FleetAccumulator &acc = totals[s];
        switch (setup.scenarios[s].policy.kind) {
        case core::DeferralPolicy::Uniform:
            // Carbon-oblivious: nothing moves.
            EXPECT_EQ(acc.deferred, 0u);
            EXPECT_EQ(acc.migrated, 0u);
            EXPECT_EQ(acc.operational_g, acc.baseline_g);
            break;
        case core::DeferralPolicy::GreedyGreenest:
        case core::DeferralPolicy::DeadlineBounded:
            // Time shifting only, never region shifting.
            EXPECT_EQ(acc.migrated, 0u);
            break;
        case core::DeferralPolicy::GreenestRegion:
            break;
        }
    }

    // On the flat grid there is nothing to gain from time shifting:
    // greedy@is-flat equals uniform@is-flat grams exactly.
    double uniform_flat = -1.0, greedy_flat = -1.0;
    for (std::size_t s = 0; s < totals.size(); ++s) {
        if (setup.scenarios[s].label == "uniform@is-flat/4.00y")
            uniform_flat = totals[s].operational_g;
        if (setup.scenarios[s].label == "greedy@is-flat/4.00y")
            greedy_flat = totals[s].operational_g;
    }
    ASSERT_GE(uniform_flat, 0.0);
    EXPECT_EQ(greedy_flat, uniform_flat);
}

TEST_F(SweepFleetDomainTest, SummarizeListsEveryScenario)
{
    const SweepPlan plan = fleetPlan();
    const Domain &domain = findDomain(plan.domain);
    const config::JsonValue doc =
        fullSweepResult(plan, domain.evaluator(plan));
    const std::string summary =
        domain.summarize(plan, doc.at("results").asArray());
    EXPECT_NE(summary.find("fleet replay, 2000 jobs x 8 scenarios"),
              std::string::npos)
        << summary;
    EXPECT_NE(summary.find("uniform@tw-solar/4.00y"),
              std::string::npos);
    EXPECT_NE(summary.find("migrate@is-flat/4.00y"),
              std::string::npos);
}

// ---------------------------------------------------------------------
// Config validation
// ---------------------------------------------------------------------

class SweepFleetDeathTest : public SweepFleetDomainTest
{
  protected:
    void
    SetUp() override
    {
        ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    }

    static void
    prepareText(const std::string &text)
    {
        SweepPlan plan =
            sweepPlanFromJson(config::JsonValue::parse(text));
        findDomain(plan.domain).prepare(plan);
    }
};

TEST_F(SweepFleetDeathTest, MissingRegionsIsFatal)
{
    EXPECT_EXIT(prepareText(R"({"domain": "fleet", "config": {}})"),
                ::testing::ExitedWithCode(1), "'regions'");
}

TEST_F(SweepFleetDeathTest, SubUnityPueIsFatal)
{
    EXPECT_EXIT(prepareText(R"({"domain": "fleet", "config": {
                    "pue": 0.5, "regions": [
                        {"profile": "flat", "region": "Iceland"}]}})"),
                ::testing::ExitedWithCode(1), "'pue' must be >= 1");
}

TEST_F(SweepFleetDeathTest, MismatchedRegionSeriesAreFatal)
{
    EXPECT_EXIT(
        prepareText(R"({"domain": "fleet", "config": {"regions": [
            {"profile": "flat", "region": "Iceland"},
            {"profile": "flat", "region": "Taiwan", "days": 2}]}})"),
        ::testing::ExitedWithCode(1), "share series length");
}

TEST_F(SweepFleetDeathTest, UnknownPolicyIsFatal)
{
    EXPECT_EXIT(prepareText(R"({"domain": "fleet", "config": {
                    "policies": ["psychic"], "regions": [
                        {"profile": "flat", "region": "Iceland"}]}})"),
                ::testing::ExitedWithCode(1), "policy");
}

TEST_F(SweepFleetDeathTest, NonPositiveLifetimeIsFatal)
{
    EXPECT_EXIT(prepareText(R"({"domain": "fleet", "config": {
                    "lifetime_years": [0], "regions": [
                        {"profile": "flat", "region": "Iceland"}]}})"),
                ::testing::ExitedWithCode(1), "lifetime_years");
}

TEST_F(SweepFleetDeathTest, NonPositiveDeadlineSamplesIsFatal)
{
    EXPECT_EXIT(prepareText(R"({"domain": "fleet", "config": {
                    "deadline_samples": -3, "regions": [
                        {"profile": "flat", "region": "Iceland"}]}})"),
                ::testing::ExitedWithCode(1),
                "'deadline_samples' must be a positive integer");
}

TEST_F(SweepFleetDeathTest, FractionalDeadlineSamplesIsFatal)
{
    EXPECT_EXIT(prepareText(R"({"domain": "fleet", "config": {
                    "deadline_samples": 2.5, "regions": [
                        {"profile": "flat", "region": "Iceland"}]}})"),
                ::testing::ExitedWithCode(1),
                "'deadline_samples' must be a positive integer");
}

TEST_F(SweepFleetDeathTest, MalformedJobStreamIsFatal)
{
    EXPECT_EXIT(prepareText(R"({"domain": "fleet", "config": {
                    "jobs": {"horizon_hours": -1}, "regions": [
                        {"profile": "flat", "region": "Iceland"}]}})"),
                ::testing::ExitedWithCode(1), "horizon_hours");
}

} // namespace
} // namespace act::sweep
