/**
 * @file
 * Property tests for the JSON layer: randomly generated documents
 * round-trip through dump() and parse() structurally unchanged.
 */

#include <gtest/gtest.h>

#include "config/json.h"
#include "util/random.h"

namespace act::config {
namespace {

/** Generate a pseudo-random JSON value with bounded depth. */
JsonValue
randomValue(util::Xorshift64Star &rng, int depth)
{
    const std::uint64_t kind = rng.nextBelow(depth > 0 ? 6 : 4);
    switch (kind) {
      case 0:
        return JsonValue(nullptr);
      case 1:
        return JsonValue(rng.nextUnit() < 0.5);
      case 2: {
        // Mix integers and awkward reals.
        if (rng.nextUnit() < 0.5) {
            return JsonValue(static_cast<double>(rng.nextBelow(1000)) -
                             500.0);
        }
        return JsonValue(rng.nextUniform(-1e6, 1e6));
      }
      case 3: {
        std::string text;
        const std::uint64_t length = rng.nextBelow(12);
        for (std::uint64_t i = 0; i < length; ++i) {
            // Printable ASCII plus characters that need escaping.
            static const char kAlphabet[] =
                "abcXYZ 019_-\"\\\n\t{}[],:";
            text += kAlphabet[rng.nextBelow(sizeof(kAlphabet) - 1)];
        }
        return JsonValue(std::move(text));
      }
      case 4: {
        JsonArray array;
        const std::uint64_t size = rng.nextBelow(4);
        for (std::uint64_t i = 0; i < size; ++i)
            array.push_back(randomValue(rng, depth - 1));
        return JsonValue(std::move(array));
      }
      default: {
        JsonObject object;
        const std::uint64_t size = rng.nextBelow(4);
        for (std::uint64_t i = 0; i < size; ++i) {
            object["k" + std::to_string(i) +
                   std::string(rng.nextBelow(2), '"')] =
                randomValue(rng, depth - 1);
        }
        return JsonValue(std::move(object));
      }
    }
}

/** Structural equality (numbers compared exactly: dump uses %.17g). */
bool
structurallyEqual(const JsonValue &a, const JsonValue &b)
{
    if (a.isNull())
        return b.isNull();
    if (a.isBool())
        return b.isBool() && a.asBool() == b.asBool();
    if (a.isNumber())
        return b.isNumber() && a.asNumber() == b.asNumber();
    if (a.isString())
        return b.isString() && a.asString() == b.asString();
    if (a.isArray()) {
        if (!b.isArray() || a.asArray().size() != b.asArray().size())
            return false;
        for (std::size_t i = 0; i < a.asArray().size(); ++i) {
            if (!structurallyEqual(a.asArray()[i], b.asArray()[i]))
                return false;
        }
        return true;
    }
    if (!b.isObject() || a.asObject().size() != b.asObject().size())
        return false;
    auto it_a = a.asObject().begin();
    auto it_b = b.asObject().begin();
    for (; it_a != a.asObject().end(); ++it_a, ++it_b) {
        if (it_a->first != it_b->first ||
            !structurallyEqual(it_a->second, it_b->second)) {
            return false;
        }
    }
    return true;
}

class JsonRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JsonRoundTrip, DumpParseIsIdentity)
{
    util::Xorshift64Star rng(GetParam());
    for (int i = 0; i < 200; ++i) {
        const JsonValue original = randomValue(rng, 4);
        // Compact form.
        const JsonValue compact = JsonValue::parse(original.dump());
        EXPECT_TRUE(structurallyEqual(original, compact))
            << original.dump();
        // Pretty-printed form.
        const JsonValue pretty = JsonValue::parse(original.dump(2));
        EXPECT_TRUE(structurallyEqual(original, pretty))
            << original.dump(2);
        // Dump is a fixed point after one round trip.
        EXPECT_EQ(compact.dump(), original.dump());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonRoundTrip,
                         ::testing::Values(1u, 17u, 99u, 2026u));

} // namespace
} // namespace act::config
