/** @file Integration tests for the Fig. 11 reconfigurable-HW study. */

#include <gtest/gtest.h>

#include "dse/scoreboard.h"
#include "mobile/reconfigurable.h"

namespace act::mobile {
namespace {

const core::FabParams kFab;

TEST(Figure11, SubstratesAndApps)
{
    ASSERT_EQ(smivSubstrates().size(), 3u);
    EXPECT_EQ(smivSubstrates()[0].name, "CPU");
    EXPECT_EQ(smivSubstrates()[1].name, "Accel");
    EXPECT_EQ(smivSubstrates()[2].name, "FPGA");
    ASSERT_EQ(allSmivApps().size(), kNumSmivApps);
    EXPECT_EQ(smivAppName(SmivApp::Fir), "FIR");
    EXPECT_EQ(smivAppName(SmivApp::Aes), "AES");
    EXPECT_EQ(smivAppName(SmivApp::Ai), "AI");
}

TEST(Figure11, PerformanceRatios)
{
    // ASIC: 26x AI speedup; FPGA: 50x/80x/24x with ~45x geomean.
    const auto results = evaluateSubstrates(kFab);
    const std::size_t ai = static_cast<std::size_t>(SmivApp::Ai);
    EXPECT_NEAR(util::asSeconds(results[0].latency[ai]) /
                    util::asSeconds(results[1].latency[ai]),
                26.0, 1e-6);
    const std::size_t fir = static_cast<std::size_t>(SmivApp::Fir);
    const std::size_t aes = static_cast<std::size_t>(SmivApp::Aes);
    EXPECT_NEAR(util::asSeconds(results[0].latency[fir]) /
                    util::asSeconds(results[2].latency[fir]),
                50.0, 1e-6);
    EXPECT_NEAR(util::asSeconds(results[0].latency[aes]) /
                    util::asSeconds(results[2].latency[aes]),
                80.0, 1e-6);
    EXPECT_NEAR(results[2].geomean_speedup, 45.0, 1.5);
    EXPECT_DOUBLE_EQ(results[0].geomean_speedup, 1.0);
}

TEST(Figure11, AiEnergyRatios)
{
    // ASIC: 44x lower AI energy than CPU and 5x lower than FPGA.
    const auto results = evaluateSubstrates(kFab);
    const std::size_t ai = static_cast<std::size_t>(SmivApp::Ai);
    EXPECT_NEAR(util::asJoules(results[0].energy[ai]) /
                    util::asJoules(results[1].energy[ai]),
                44.0, 1e-6);
    EXPECT_NEAR(util::asJoules(results[2].energy[ai]) /
                    util::asJoules(results[1].energy[ai]),
                5.0, 0.01);
}

TEST(Figure11, EmbodiedRatios)
{
    // CPU incurs 1.3x and 1.8x lower embodied footprint than ASIC and
    // FPGA configurations.
    const auto results = evaluateSubstrates(kFab);
    EXPECT_NEAR(util::asGrams(results[1].embodied) /
                    util::asGrams(results[0].embodied),
                1.3, 0.01);
    EXPECT_NEAR(util::asGrams(results[2].embodied) /
                    util::asGrams(results[0].embodied),
                1.8, 0.01);
}

TEST(Figure11, FpgaWinsAllCarbonMetrics)
{
    // "In fact, across CDP, CEP, CE2P, C2EP, FPGA outperforms CPU and
    // ASIC-based designs."
    const dse::Scoreboard scoreboard(reconfigurableDesignSpace(kFab));
    for (core::Metric metric : core::carbonMetrics())
        EXPECT_EQ(scoreboard.winner(metric), "FPGA")
            << core::metricName(metric);
}

TEST(Figure11, AsicFallsBackToHostForNonAiApps)
{
    const auto results = evaluateSubstrates(kFab);
    for (SmivApp app : {SmivApp::Fir, SmivApp::Aes}) {
        const std::size_t i = static_cast<std::size_t>(app);
        EXPECT_DOUBLE_EQ(util::asSeconds(results[1].latency[i]),
                         util::asSeconds(results[0].latency[i]));
        EXPECT_DOUBLE_EQ(util::asJoules(results[1].energy[i]),
                         util::asJoules(results[0].energy[i]));
    }
}

TEST(Figure11, CpuBaselinesAreConsistent)
{
    for (SmivApp app : allSmivApps()) {
        EXPECT_NEAR(util::asJoules(cpuAppEnergy(app)),
                    1.5 * util::asSeconds(cpuAppLatency(app)), 1e-12);
    }
}

} // namespace
} // namespace act::mobile
