/** @file Unit tests for string helpers and text rendering utilities. */

#include <gtest/gtest.h>

#include "util/csv.h"
#include "util/strings.h"
#include "util/table.h"

namespace act::util {
namespace {

TEST(Strings, SplitBasic)
{
    const auto fields = split("a,b,c", ',');
    ASSERT_EQ(fields.size(), 3u);
    EXPECT_EQ(fields[0], "a");
    EXPECT_EQ(fields[2], "c");
}

TEST(Strings, SplitPreservesEmptyFields)
{
    const auto fields = split(",x,,", ',');
    ASSERT_EQ(fields.size(), 4u);
    EXPECT_EQ(fields[0], "");
    EXPECT_EQ(fields[1], "x");
    EXPECT_EQ(fields[2], "");
    EXPECT_EQ(fields[3], "");
}

TEST(Strings, Trim)
{
    EXPECT_EQ(trim("  hello \t\n"), "hello");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, ToLowerAndStartsWith)
{
    EXPECT_EQ(toLower("Kirin 990"), "kirin 990");
    EXPECT_TRUE(startsWith("Snapdragon 865", "Snap"));
    EXPECT_FALSE(startsWith("DSP", "DSPX"));
    EXPECT_TRUE(startsWith("abc", ""));
}

TEST(Strings, FormatFixed)
{
    EXPECT_EQ(formatFixed(1.2345, 2), "1.23");
    EXPECT_EQ(formatFixed(-0.5, 1), "-0.5");
    EXPECT_EQ(formatFixed(3.0, 0), "3");
}

TEST(Strings, FormatSig)
{
    EXPECT_EQ(formatSig(0.0, 3), "0");
    EXPECT_EQ(formatSig(1234.6, 4), "1235");
    EXPECT_EQ(formatSig(0.001234, 2), "0.0012");
    EXPECT_EQ(formatSig(12.345, 3), "12.3");
}

TEST(Strings, FormatSigLargeAndTinyUseScientific)
{
    EXPECT_NE(formatSig(1.5e9, 3).find('e'), std::string::npos);
    EXPECT_NE(formatSig(2.5e-7, 3).find('e'), std::string::npos);
}

TEST(Strings, Join)
{
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(join({}, ","), "");
    EXPECT_EQ(join({"only"}, ","), "only");
}

TEST(Table, RendersHeaderAndRows)
{
    Table table({"Node", "EPA"});
    table.addRow({"28nm", "0.90"});
    table.addRow("20nm", {1.2}, 3);
    const std::string out = table.render();
    EXPECT_NE(out.find("Node"), std::string::npos);
    EXPECT_NE(out.find("28nm"), std::string::npos);
    EXPECT_NE(out.find("1.20"), std::string::npos);
    EXPECT_EQ(table.rowCount(), 2u);
}

TEST(Table, MismatchedRowIsFatal)
{
    Table table({"a", "b"});
    EXPECT_EXIT(table.addRow({"only one"}), ::testing::ExitedWithCode(1),
                "");
}

TEST(Table, SeparatorInsertsRule)
{
    Table table({"x"});
    table.addRow({"1"});
    table.addSeparator();
    table.addRow({"2"});
    const std::string out = table.render();
    // header rule + top + bottom + separator = 4 rules.
    std::size_t rules = 0;
    for (std::size_t pos = out.find("+-"); pos != std::string::npos;
         pos = out.find("+-", pos + 1)) {
        ++rules;
    }
    EXPECT_GE(rules, 4u);
}

TEST(Csv, EscapesSpecialCharacters)
{
    EXPECT_EQ(CsvWriter::escapeField("plain"), "plain");
    EXPECT_EQ(CsvWriter::escapeField("a,b"), "\"a,b\"");
    EXPECT_EQ(CsvWriter::escapeField("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(CsvWriter::escapeField("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WritesHeaderAndRows)
{
    CsvWriter csv({"name", "value"});
    csv.addRow({"alpha", "1"});
    csv.addRow("beta", {2.5});
    const std::string out = csv.toString();
    EXPECT_EQ(out.substr(0, 11), "name,value\n");
    EXPECT_NE(out.find("alpha,1"), std::string::npos);
    EXPECT_NE(out.find("beta,2.5"), std::string::npos);
}

TEST(Csv, ColumnMismatchIsFatal)
{
    CsvWriter csv({"a"});
    EXPECT_EXIT(csv.addRow({"1", "2"}), ::testing::ExitedWithCode(1), "");
}

} // namespace
} // namespace act::util
