/** @file Tests for the embodied-carbon model (Eqs. 3-8). */

#include <gtest/gtest.h>

#include "core/embodied.h"

namespace act::core {
namespace {

using util::asGrams;
using util::asKilograms;
using util::gigabytes;
using util::gramsPerGigabyte;
using util::squareCentimeters;
using util::squareMillimeters;

TEST(Cpa, Eq5HandComputedAt10nm)
{
    // CPA = (CI_fab * EPA + GPA + MPA) / Y with the paper defaults:
    // CI_fab = 447.5 g/kWh, EPA(10nm) = 1.475 kWh/cm2,
    // GPA(10nm, 97%) = 195 g/cm2, MPA = 500 g/cm2, Y = 0.875.
    const FabParams fab;
    const double expected =
        (447.5 * 1.475 + 195.0 + 500.0) / 0.875;
    EXPECT_NEAR(carbonPerArea(fab, 10.0).value(), expected, 1e-9);
}

TEST(Cpa, Eq5HandComputedAt28nm)
{
    const FabParams fab;
    const double expected = (447.5 * 0.90 + 137.5 + 500.0) / 0.875;
    EXPECT_NEAR(carbonPerArea(fab, 28.0).value(), expected, 1e-9);
}

TEST(Cpa, YieldScalesInversely)
{
    FabParams half_yield;
    half_yield.yield = 0.4375;
    const FabParams base;
    EXPECT_NEAR(carbonPerArea(half_yield, 14.0).value(),
                2.0 * carbonPerArea(base, 14.0).value(), 1e-9);
}

TEST(Cpa, BadYieldIsFatal)
{
    FabParams fab;
    fab.yield = 0.0;
    EXPECT_EXIT(carbonPerArea(fab, 14.0), ::testing::ExitedWithCode(1),
                "");
    fab.yield = 1.5;
    EXPECT_EXIT(carbonPerArea(fab, 14.0), ::testing::ExitedWithCode(1),
                "");
}

TEST(Cpa, RenewableFabCheaperThanTaiwanGrid)
{
    // Fig. 6 bottom: the CPA band spans renewable (lower bound) to
    // Taiwan-grid (upper bound) fabs.
    for (double nm : {3.0, 7.0, 16.0, 28.0}) {
        EXPECT_LT(carbonPerArea(FabParams::renewable(), nm).value(),
                  carbonPerArea(FabParams::taiwanGrid(), nm).value());
    }
}

TEST(Cpa, NewerNodesEmitMorePerArea)
{
    // Fig. 6: CPA rises towards advanced nodes.
    const FabParams fab;
    double prev = carbonPerArea(fab, 28.0).value();
    for (double nm : {20.0, 14.0, 10.0, 7.0, 5.0, 3.0}) {
        const double current = carbonPerArea(fab, nm).value();
        EXPECT_GE(current, prev - 1e-9) << nm;
        prev = current;
    }
}

TEST(Cpa, NamedEuvNodeExceedsBaseline7nm)
{
    const FabParams fab;
    EXPECT_GT(carbonPerAreaNamed(fab, "7nm-EUV").value(),
              carbonPerArea(fab, 7.0).value());
    EXPECT_EXIT(carbonPerAreaNamed(fab, "6nm"),
                ::testing::ExitedWithCode(1), "");
}

TEST(LogicEmbodied, Eq4ScalesWithArea)
{
    const FabParams fab;
    const util::Mass one = logicEmbodied(squareCentimeters(1.0), 14.0,
                                         fab);
    const util::Mass two = logicEmbodied(squareCentimeters(2.0), 14.0,
                                         fab);
    EXPECT_NEAR(asGrams(two), 2.0 * asGrams(one), 1e-9);
    EXPECT_NEAR(asGrams(one), carbonPerArea(fab, 14.0).value(), 1e-9);
}

TEST(StorageEmbodied, Eq6Through8)
{
    EXPECT_DOUBLE_EQ(
        asGrams(storageEmbodied(gigabytes(8.0), gramsPerGigabyte(48.0))),
        384.0);
    EXPECT_DOUBLE_EQ(asGrams(storageEmbodied(gigabytes(64.0),
                                             "10nm NAND")),
                     640.0);
    EXPECT_DOUBLE_EQ(asGrams(storageEmbodied(gigabytes(1000.0),
                                             "BarraCuda")),
                     4570.0);
    EXPECT_EXIT(storageEmbodied(gigabytes(1.0), "unknown tech"),
                ::testing::ExitedWithCode(1), "");
}

TEST(Packaging, KrIs150Grams)
{
    EXPECT_DOUBLE_EQ(asGrams(kPackagingFootprint), 150.0);
    EXPECT_DOUBLE_EQ(asGrams(packagingEmbodied(0)), 0.0);
    EXPECT_DOUBLE_EQ(asGrams(packagingEmbodied(20)), 3000.0);
    EXPECT_EXIT(packagingEmbodied(-1), ::testing::ExitedWithCode(1), "");
}

TEST(DeviceEvaluation, Figure4Iphone11)
{
    const EmbodiedModel model;
    const auto device =
        data::DeviceDatabase::instance().byNameOrDie("iPhone 11");
    const DeviceFootprint footprint = model.evaluate(device);

    // Paper: ACT bottom-up estimate ~17 kg for the iPhone 11 ICs.
    EXPECT_NEAR(asKilograms(footprint.total()), 17.0, 0.7);
    // The A13 is the single largest IC.
    EXPECT_GT(asKilograms(
                  footprint.categoryTotal(data::IcCategory::MainSoc)),
              1.5);
    // Total = components + packaging.
    EXPECT_NEAR(asGrams(footprint.total()),
                asGrams(footprint.componentTotal()) +
                    asGrams(footprint.packaging),
                1e-6);
    EXPECT_EQ(footprint.package_count, 27);
}

TEST(DeviceEvaluation, Figure4Ipad)
{
    const EmbodiedModel model;
    const auto device =
        data::DeviceDatabase::instance().byNameOrDie("iPad");
    // Paper: ACT bottom-up estimate ~21 kg for the iPad ICs.
    EXPECT_NEAR(asKilograms(model.evaluate(device).total()), 21.0, 0.7);
}

TEST(DeviceEvaluation, ActBottomUpBelowLcaTopDown)
{
    // Fig. 4's headline: ACT's bottom-up estimates (17/21 kg) sit below
    // the coarse LCA top-down estimates (23/28 kg).
    const EmbodiedModel model;
    for (const char *name : {"iPhone 11", "iPad"}) {
        const auto device =
            data::DeviceDatabase::instance().byNameOrDie(name);
        EXPECT_LT(asGrams(model.evaluate(device).total()),
                  asGrams(device.lca.icEstimate()))
            << name;
    }
}

TEST(DeviceEvaluation, GreenFabShrinksEveryLogicComponent)
{
    const auto device =
        data::DeviceDatabase::instance().byNameOrDie("iPhone 11");
    const DeviceFootprint base = EmbodiedModel{}.evaluate(device);
    const DeviceFootprint green =
        EmbodiedModel{FabParams::renewable()}.evaluate(device);
    EXPECT_LT(asGrams(green.total()), asGrams(base.total()));
    // Memory/storage CPS terms are unchanged by the fab CI.
    EXPECT_DOUBLE_EQ(
        asGrams(green.categoryTotal(data::IcCategory::Dram)),
        asGrams(base.categoryTotal(data::IcCategory::Dram)));
}

TEST(DeviceEvaluation, CategoryTotalsPartitionComponents)
{
    const EmbodiedModel model;
    const auto device =
        data::DeviceDatabase::instance().byNameOrDie("Dell R740");
    const DeviceFootprint footprint = model.evaluate(device);
    double category_sum = 0.0;
    for (data::IcCategory category :
         {data::IcCategory::MainSoc, data::IcCategory::CameraIc,
          data::IcCategory::Dram, data::IcCategory::Flash,
          data::IcCategory::Hdd, data::IcCategory::OtherIc}) {
        category_sum += asGrams(footprint.categoryTotal(category));
    }
    EXPECT_NEAR(category_sum, asGrams(footprint.componentTotal()), 1e-6);
}

} // namespace
} // namespace act::core
