/**
 * @file
 * Tests for the SSD reliability substrate: analytical write
 * amplification, the trace-driven FTL simulator that validates it, and
 * the Fig. 15 over-provisioning study.
 */

#include <gtest/gtest.h>

#include "ssd/ftl_sim.h"
#include "ssd/lifetime.h"
#include "ssd/wa_model.h"

namespace act::ssd {
namespace {

TEST(WaModel, KnownValues)
{
    EXPECT_NEAR(analyticalWriteAmplification(0.04), 13.0, 1e-9);
    EXPECT_NEAR(analyticalWriteAmplification(0.16), 3.625, 1e-9);
    EXPECT_NEAR(analyticalWriteAmplification(0.34), 1.9706, 1e-3);
    // Enormous spare area drives WA to its floor of 1.
    EXPECT_DOUBLE_EQ(analyticalWriteAmplification(10.0), 1.0);
}

TEST(WaModel, MonotonicallyDecreasingInOverProvision)
{
    double prev = analyticalWriteAmplification(0.02);
    for (double op = 0.04; op <= 0.6; op += 0.02) {
        const double wa = analyticalWriteAmplification(op);
        EXPECT_LT(wa, prev);
        EXPECT_GE(wa, 1.0);
        prev = wa;
    }
}

TEST(WaModel, NonPositiveFactorIsFatal)
{
    EXPECT_EXIT(analyticalWriteAmplification(0.0),
                ::testing::ExitedWithCode(1), "");
    EXPECT_EXIT(analyticalWriteAmplification(-0.1),
                ::testing::ExitedWithCode(1), "");
}

TEST(FtlSim, ConservesLogicalSpace)
{
    FtlConfig config;
    config.num_blocks = 128;
    config.pages_per_block = 32;
    config.over_provision = 0.25;
    config.user_writes = 100'000;
    FtlSimulator sim(config);
    // logical * (1 + op) == physical.
    EXPECT_EQ(sim.logicalPageCount(),
              static_cast<std::uint64_t>(128 * 32 / 1.25));
    const FtlStats stats = sim.run();
    EXPECT_EQ(stats.user_pages_written, config.user_writes);
    EXPECT_GE(stats.physical_pages_written, stats.user_pages_written);
    EXPECT_GT(stats.gc_invocations, 0u);
    EXPECT_GT(stats.erases, 0u);
}

TEST(FtlSim, DeterministicForFixedSeed)
{
    FtlConfig config;
    config.num_blocks = 64;
    config.pages_per_block = 16;
    config.user_writes = 50'000;
    const FtlStats a = FtlSimulator(config).run();
    const FtlStats b = FtlSimulator(config).run();
    EXPECT_EQ(a.physical_pages_written, b.physical_pages_written);
    EXPECT_EQ(a.erases, b.erases);
}

TEST(FtlSim, BadConfigsAreFatal)
{
    FtlConfig config;
    config.over_provision = 0.0;
    EXPECT_EXIT(FtlSimulator{config}, ::testing::ExitedWithCode(1), "");
    config.over_provision = 1.2;
    EXPECT_EXIT(FtlSimulator{config}, ::testing::ExitedWithCode(1), "");
    config = FtlConfig{};
    config.num_blocks = 4;
    EXPECT_EXIT(FtlSimulator{config}, ::testing::ExitedWithCode(1), "");
}

/**
 * The headline validation: measured WA from the trace-driven FTL
 * tracks the analytical greedy-GC model across over-provisioning
 * levels (the analytical curve is a steady-state approximation, so a
 * generous-but-bounded divergence is allowed).
 */
class FtlVsAnalytical : public ::testing::TestWithParam<double> {};

TEST_P(FtlVsAnalytical, MeasuredWaTracksModel)
{
    const double op = GetParam();
    FtlConfig config;
    config.num_blocks = 256;
    config.pages_per_block = 32;
    config.over_provision = op;
    config.user_writes = 400'000;
    const FtlStats stats = FtlSimulator(config).run();
    const double measured = stats.writeAmplification();
    const double predicted = analyticalWriteAmplification(op);
    EXPECT_GT(measured, 1.0);
    // Within 35% of the analytical approximation.
    EXPECT_NEAR(measured / predicted, 1.0, 0.35) << "op=" << op;
}

INSTANTIATE_TEST_SUITE_P(OverProvisionSweep, FtlVsAnalytical,
                         ::testing::Values(0.08, 0.16, 0.25, 0.34,
                                           0.45));

TEST(FtlSim, MoreSpareAreaLowersMeasuredWa)
{
    FtlConfig config;
    config.num_blocks = 256;
    config.pages_per_block = 32;
    config.user_writes = 300'000;

    config.over_provision = 0.08;
    const double tight = FtlSimulator(config).run().writeAmplification();
    config.over_provision = 0.40;
    const double roomy = FtlSimulator(config).run().writeAmplification();
    EXPECT_GT(tight, roomy);
}

TEST(FtlSim, SkewedWorkloadRaisesWa)
{
    // Hot/cold skew without stream separation mixes short- and
    // long-lived pages in every block, increasing relocations over a
    // uniform workload at the same over-provisioning.
    FtlConfig config;
    config.num_blocks = 256;
    config.pages_per_block = 32;
    config.over_provision = 0.16;
    config.user_writes = 300'000;

    const double uniform =
        FtlSimulator(config).run().writeAmplification();
    config.pattern = WritePattern::HotCold;
    const double skewed =
        FtlSimulator(config).run().writeAmplification();
    // Greedy GC already exploits some skew (hot blocks invalidate
    // fast); the interesting comparison is against separation below.
    EXPECT_GT(skewed, 1.0);
    EXPECT_GT(uniform, 1.0);
}

TEST(FtlSim, HotColdSeparationReducesWa)
{
    FtlConfig config;
    config.num_blocks = 256;
    config.pages_per_block = 32;
    config.over_provision = 0.16;
    config.user_writes = 300'000;
    config.pattern = WritePattern::HotCold;
    config.hot_lba_fraction = 0.1;
    config.hot_write_fraction = 0.9;

    const double mixed =
        FtlSimulator(config).run().writeAmplification();
    config.separate_hot_cold = true;
    const double separated =
        FtlSimulator(config).run().writeAmplification();
    EXPECT_LT(separated, mixed);
    // Separation is worth a solid margin under 90/10 skew.
    EXPECT_LT(separated, 0.9 * mixed);
}

TEST(FtlSim, SeparationIsHarmlessUnderUniformTraffic)
{
    FtlConfig config;
    config.num_blocks = 256;
    config.pages_per_block = 32;
    config.over_provision = 0.16;
    config.user_writes = 200'000;
    config.pattern = WritePattern::Uniform;

    const double base = FtlSimulator(config).run().writeAmplification();
    config.separate_hot_cold = true;  // no effect: stream 1 unused
    const double with_flag =
        FtlSimulator(config).run().writeAmplification();
    EXPECT_DOUBLE_EQ(base, with_flag);
}

TEST(FtlSim, StateIsConsistentAfterRuns)
{
    for (bool separated : {false, true}) {
        FtlConfig config;
        config.num_blocks = 128;
        config.pages_per_block = 16;
        config.over_provision = 0.2;
        config.user_writes = 100'000;
        config.pattern = WritePattern::HotCold;
        config.separate_hot_cold = separated;
        FtlSimulator sim(config);
        sim.run();
        EXPECT_TRUE(sim.checkConsistency()) << separated;
    }
}

TEST(FtlSim, BadHotColdParametersAreFatal)
{
    FtlConfig config;
    config.pattern = WritePattern::HotCold;
    config.hot_lba_fraction = 0.0;
    EXPECT_EXIT(FtlSimulator{config}, ::testing::ExitedWithCode(1), "");
    config.hot_lba_fraction = 0.2;
    config.hot_write_fraction = 1.5;
    EXPECT_EXIT(FtlSimulator{config}, ::testing::ExitedWithCode(1), "");
}

TEST(Lifetime, MezaModelValues)
{
    // Calibrated per DESIGN.md: ~2 years at PF = 16%, ~4.3 years at
    // PF = 34% (Fig. 15 top).
    EXPECT_NEAR(util::asYears(ssdLifetime(0.16)), 2.0, 0.1);
    EXPECT_NEAR(util::asYears(ssdLifetime(0.34)), 4.3, 0.15);
    EXPECT_LT(util::asYears(ssdLifetime(0.04)), 1.0);
}

TEST(Lifetime, ScalesWithReliabilityParameters)
{
    ReliabilityParams heavy;
    heavy.dwpd = 2.6;  // twice the write pressure halves the lifetime
    EXPECT_NEAR(util::asYears(ssdLifetime(0.16, heavy)),
                util::asYears(ssdLifetime(0.16)) / 2.0, 1e-9);
    ReliabilityParams mlc;
    mlc.pec = 6000.0;  // doubling PEC doubles it
    EXPECT_NEAR(util::asYears(ssdLifetime(0.16, mlc)),
                util::asYears(ssdLifetime(0.16)) * 2.0, 1e-9);
    ReliabilityParams bad;
    bad.pec = 0.0;
    EXPECT_EXIT(ssdLifetime(0.16, bad), ::testing::ExitedWithCode(1),
                "");
}

TEST(Figure15, FirstLifeOptimalAtSixteenPercent)
{
    // One ~2-year mobile life needs PF ~ 16%.
    ProvisioningStudyParams params;
    params.service_period = util::years(2.0);
    EXPECT_NEAR(minimumPfForService(params), 0.16, 0.02);
}

TEST(Figure15, SecondLifeNeedsThirtyFourPercent)
{
    // Extending to a 4-year second life needs PF ~ 34%.
    ProvisioningStudyParams params;
    params.service_period = util::years(4.0);
    EXPECT_NEAR(minimumPfForService(params), 0.34, 0.03);
}

TEST(Figure15, SecondLifeReducesEmbodiedByNearlyTwoX)
{
    // One 34%-provisioned drive over 4 years vs two 16%-provisioned
    // drives over two 2-year lives: ~1.8x reduction.
    ProvisioningStudyParams first;
    first.service_period = util::years(2.0);
    const double pf_first = minimumPfForService(first);
    ProvisioningStudyParams second;
    second.service_period = util::years(4.0);
    const double pf_second = minimumPfForService(second);
    const double reduction =
        2.0 * (1.0 + pf_first) / (1.0 + pf_second);
    EXPECT_NEAR(reduction, 1.8, 0.1);
}

TEST(Figure15, SweepFindsInteriorOptimum)
{
    // With whole-device replacement over a 2-year service period the
    // effective embodied curve is minimized near the smallest PF whose
    // lifetime covers the period.
    ProvisioningStudyParams params;
    params.whole_devices = true;
    params.service_period = util::years(2.0);
    const auto sweep = overProvisionSweep(params);
    const std::size_t best = optimalOverProvisionIndex(sweep);
    EXPECT_NEAR(sweep[best].pf, minimumPfForService(params), 0.02);
    // Beyond the optimum, extra spare only adds carbon.
    EXPECT_GT(util::asGrams(sweep.back().effective_embodied),
              util::asGrams(sweep[best].effective_embodied));
    // Below it, early replacement dominates.
    EXPECT_GT(util::asGrams(sweep.front().effective_embodied),
              util::asGrams(sweep[best].effective_embodied));
}

TEST(Figure15, PointFieldsAreConsistent)
{
    ProvisioningStudyParams params;
    const OverProvisionPoint at16 = evaluateOverProvision(0.16, params);
    EXPECT_NEAR(at16.write_amplification, 3.625, 1e-9);
    EXPECT_NEAR(at16.lifetime_years, 2.0, 0.1);
    // A short-lived drive (PF = 10%) needs more than one device to
    // cover the 2-year service period.
    const OverProvisionPoint at10 = evaluateOverProvision(0.10, params);
    EXPECT_GT(at10.devices, 1.0);
    EXPECT_NEAR(at10.devices,
                util::asYears(params.service_period) /
                    at10.lifetime_years,
                1e-9);
    // Embodied = devices * (1 + pf) * capacity * cps.
    EXPECT_NEAR(util::asGrams(at10.effective_embodied),
                at10.devices * 1.10 * 128.0 * 6.3, 1e-6);
}

TEST(Figure15, BadSweepsAreFatal)
{
    ProvisioningStudyParams params;
    EXPECT_EXIT(overProvisionSweep(params, 0.2, 0.1),
                ::testing::ExitedWithCode(1), "");
    EXPECT_EXIT(optimalOverProvisionIndex({}),
                ::testing::ExitedWithCode(1), "");
    params.service_period = util::years(50.0);
    EXPECT_EXIT(minimumPfForService(params),
                ::testing::ExitedWithCode(1), "");
}

} // namespace
} // namespace act::ssd
