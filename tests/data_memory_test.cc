/** @file Tests for the Table 9/10/11 storage carbon databases. */

#include <gtest/gtest.h>

#include "data/memory_db.h"

namespace act::data {
namespace {

TEST(Table9, ExactDramValues)
{
    EXPECT_DOUBLE_EQ(storageOrDie("50nm DDR3").cps.value(), 600.0);
    EXPECT_DOUBLE_EQ(storageOrDie("40nm DDR3").cps.value(), 315.0);
    EXPECT_DOUBLE_EQ(storageOrDie("30nm DDR3").cps.value(), 230.0);
    EXPECT_DOUBLE_EQ(storageOrDie("30nm LPDDR3").cps.value(), 201.0);
    EXPECT_DOUBLE_EQ(storageOrDie("20nm LPDDR3").cps.value(), 184.0);
    EXPECT_DOUBLE_EQ(storageOrDie("20nm LPDDR2").cps.value(), 159.0);
    EXPECT_DOUBLE_EQ(storageOrDie("LPDDR4").cps.value(), 48.0);
    EXPECT_DOUBLE_EQ(storageOrDie("10nm DDR4").cps.value(), 65.0);
}

TEST(Table10, ExactSsdValues)
{
    EXPECT_DOUBLE_EQ(storageOrDie("30nm NAND").cps.value(), 30.0);
    EXPECT_DOUBLE_EQ(storageOrDie("20nm NAND").cps.value(), 15.0);
    EXPECT_DOUBLE_EQ(storageOrDie("10nm NAND").cps.value(), 10.0);
    EXPECT_DOUBLE_EQ(storageOrDie("1z NAND TLC").cps.value(), 5.6);
    EXPECT_DOUBLE_EQ(storageOrDie("V3 NAND TLC").cps.value(), 6.3);
    EXPECT_DOUBLE_EQ(storageOrDie("Western Digital 2016").cps.value(),
                     24.4);
    EXPECT_DOUBLE_EQ(storageOrDie("Western Digital 2019").cps.value(),
                     10.7);
    EXPECT_DOUBLE_EQ(storageOrDie("Seagate Nytro 1551").cps.value(),
                     3.95);
    EXPECT_DOUBLE_EQ(storageOrDie("Seagate Nytro 3331").cps.value(),
                     16.92);
}

TEST(Table11, ExactHddValues)
{
    EXPECT_DOUBLE_EQ(storageOrDie("BarraCuda").cps.value(), 4.57);
    EXPECT_DOUBLE_EQ(storageOrDie("BarraCuda2").cps.value(), 10.32);
    EXPECT_DOUBLE_EQ(storageOrDie("BarraCuda Pro").cps.value(), 2.35);
    EXPECT_DOUBLE_EQ(storageOrDie("FireCuda").cps.value(), 5.1);
    EXPECT_DOUBLE_EQ(storageOrDie("FireCuda 2").cps.value(), 9.1);
    EXPECT_DOUBLE_EQ(storageOrDie("Exos2x14").cps.value(), 1.65);
    EXPECT_DOUBLE_EQ(storageOrDie("Exosx12").cps.value(), 1.14);
    EXPECT_DOUBLE_EQ(storageOrDie("Exosx16").cps.value(), 1.33);
    EXPECT_DOUBLE_EQ(storageOrDie("Exos15e900").cps.value(), 20.5);
    EXPECT_DOUBLE_EQ(storageOrDie("Exos10e2400").cps.value(), 10.3);
}

TEST(StorageTables, RowCountsMatchPaper)
{
    EXPECT_EQ(storageTable(StorageClass::Dram).size(), 8u);
    EXPECT_EQ(storageTable(StorageClass::Ssd).size(), 12u);
    EXPECT_EQ(storageTable(StorageClass::Hdd).size(), 10u);
}

TEST(StorageTables, ClassesAreConsistent)
{
    for (StorageClass cls :
         {StorageClass::Dram, StorageClass::Ssd, StorageClass::Hdd}) {
        for (const auto &record : storageTable(cls)) {
            EXPECT_EQ(record.storage_class, cls);
            EXPECT_GT(record.cps.value(), 0.0);
        }
    }
}

TEST(StorageTables, HddSegmentsAssigned)
{
    for (const auto &record : storageTable(StorageClass::Hdd))
        EXPECT_NE(record.segment, StorageSegment::NotApplicable);
    EXPECT_EQ(storageOrDie("Exosx12").segment,
              StorageSegment::Enterprise);
    EXPECT_EQ(storageOrDie("BarraCuda").segment,
              StorageSegment::Consumer);
}

TEST(StorageTables, NewerNandNodesCheaperPerGb)
{
    // Fig. 7: at commensurate nodes newer NAND is lower carbon/GB.
    EXPECT_GT(storageOrDie("30nm NAND").cps.value(),
              storageOrDie("20nm NAND").cps.value());
    EXPECT_GT(storageOrDie("20nm NAND").cps.value(),
              storageOrDie("10nm NAND").cps.value());
    EXPECT_GT(storageOrDie("10nm NAND").cps.value(),
              storageOrDie("1z NAND TLC").cps.value());
}

TEST(StorageTables, DramDenserThanSsdAtCommensurateNodes)
{
    // Fig. 7: DRAM carbon/GB exceeds SSD carbon/GB at similar nodes.
    EXPECT_GT(storageOrDie("30nm DDR3").cps.value(),
              storageOrDie("30nm NAND").cps.value());
    EXPECT_GT(storageOrDie("10nm DDR4").cps.value(),
              storageOrDie("10nm NAND").cps.value());
}

TEST(Lookup, CaseInsensitiveAndMissing)
{
    EXPECT_TRUE(findStorage("lpddr4").has_value());
    EXPECT_TRUE(findStorage("V3 nand tlc").has_value());
    EXPECT_FALSE(findStorage("optane").has_value());
    EXPECT_EXIT(storageOrDie("optane"), ::testing::ExitedWithCode(1), "");
}

TEST(Defaults, ExpectedTechnologies)
{
    EXPECT_EQ(defaultDram().name, "LPDDR4");
    EXPECT_EQ(defaultSsd().name, "V3 NAND TLC");
    EXPECT_EQ(defaultHdd().name, "BarraCuda");
}

} // namespace
} // namespace act::data
