/**
 * @file
 * Tests for the packaging layer: the PackageSpec oracle, the compiled
 * PackagePlan (bit-identical to the oracle, scalar and batch), spec
 * validation, and the legacy homogeneous-chiplet wrapper.
 */

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/embodied.h"
#include "pkg/chiplet.h"
#include "pkg/package.h"
#include "pkg/pkg_plan.h"

namespace act::pkg {
namespace {

using util::squareMillimeters;

constexpr core::YieldModel kYieldModels[] = {
    core::YieldModel::Poisson,
    core::YieldModel::Murphy,
    core::YieldModel::NegativeBinomial,
};

/** A heterogeneous package under @p style: two compute dies at 5 nm,
 *  one mature I/O die, two cache dies -- or a single monolithic SoC. */
PackageSpec
heteroSpec(PackagingStyle style, core::YieldModel model)
{
    PackageSpec spec = PackageSpec::forStyle(style);
    core::DefectParams leading{0.12, 3.0, model};
    if (style == PackagingStyle::Monolithic) {
        spec.chiplets.push_back(
            {"soc", squareMillimeters(300.0), 7.0, leading, 1});
        return spec;
    }
    core::DefectParams mature{0.08, 2.0, model};
    spec.chiplets.push_back(
        {"compute", squareMillimeters(150.0), 5.0, leading, 2});
    spec.chiplets.push_back(
        {"io", squareMillimeters(90.0), 28.0, mature, 1});
    spec.chiplets.push_back(
        {"cache", squareMillimeters(60.0), 14.0, leading, 2});
    return spec;
}

// ---------------------------------------------------------------------
// Oracle structure
// ---------------------------------------------------------------------

TEST(PackageOracle, StyleNamesRoundTrip)
{
    for (const PackagingStyle style : kPackagingStyles)
        EXPECT_EQ(packagingStyleByName(packagingStyleName(style)),
                  style);
}

TEST(PackageOracle, BondCounts)
{
    EXPECT_EQ(bondCount(PackagingStyle::Monolithic, 1), 0);
    EXPECT_EQ(bondCount(PackagingStyle::OrganicSubstrate, 5), 5);
    EXPECT_EQ(bondCount(PackagingStyle::SiliconInterposer, 4), 4);
    EXPECT_EQ(bondCount(PackagingStyle::Stacked3D, 4), 3);
}

TEST(PackageOracle, ComponentsAddUpUnderPackageYield)
{
    const core::FabParams fab;
    for (const PackagingStyle style : kPackagingStyles) {
        const PackageSpec spec =
            heteroSpec(style, core::YieldModel::NegativeBinomial);
        const PackageResult result = evaluatePackage(spec, fab);
        EXPECT_EQ(result.die_count, spec.dieCount());
        EXPECT_EQ(result.package_yield,
                  std::pow(spec.bond_yield,
                           bondCount(style, spec.dieCount())));
        EXPECT_EQ(util::asGrams(result.total),
                  (util::asGrams(result.silicon_embodied) +
                   util::asGrams(result.substrate_embodied) +
                   util::asGrams(result.assembly_embodied)) /
                      result.package_yield);
        EXPECT_GT(util::asSquareCentimeters(result.effective_silicon),
                  util::asSquareCentimeters(result.silicon_area));
        EXPECT_GT(result.min_die_yield, 0.0);
        EXPECT_LT(result.min_die_yield, 1.0);
    }
}

TEST(PackageOracle, TsvOverheadInflatesStackedSilicon)
{
    const core::FabParams fab;
    PackageSpec spec =
        heteroSpec(PackagingStyle::Stacked3D,
                   core::YieldModel::NegativeBinomial);
    const PackageResult with_tsv = evaluatePackage(spec, fab);
    spec.tsv_area_overhead = 0.0;
    const PackageResult without = evaluatePackage(spec, fab);
    EXPECT_GT(util::asSquareCentimeters(with_tsv.silicon_area),
              util::asSquareCentimeters(without.silicon_area));
    EXPECT_GT(util::asGrams(with_tsv.silicon_embodied),
              util::asGrams(without.silicon_embodied));
}

TEST(PackageOracle, InterfaceEnergyScalesWithBits)
{
    const core::FabParams fab;
    const PackageResult result = evaluatePackage(
        heteroSpec(PackagingStyle::OrganicSubstrate,
                   core::YieldModel::Poisson),
        fab);
    EXPECT_EQ(result.d2d_energy_pj_per_bit, 1.0);
    EXPECT_DOUBLE_EQ(util::asJoules(result.interfaceEnergy(1e12)),
                     1.0);
}

// ---------------------------------------------------------------------
// Compiled plan vs oracle, bitwise
// ---------------------------------------------------------------------

TEST(PackagePlanTest, MatchesOracleBitwiseEveryStyleAndYieldModel)
{
    const core::FabParams fab;
    for (const PackagingStyle style : kPackagingStyles) {
        for (const core::YieldModel model : kYieldModels) {
            const PackageSpec spec = heteroSpec(style, model);
            const PackagePlan plan =
                PackagePlan::compile(spec, fab);
            const PackageResult oracle = evaluatePackage(spec, fab);
            EXPECT_EQ(plan.evaluate(), util::asGrams(oracle.total))
                << packagingStyleName(style) << " / "
                << core::yieldModelName(model);
            EXPECT_EQ(plan.packageYield(), oracle.package_yield);
        }
    }
}

TEST(PackagePlanTest, RowPerGroupPlusSubstrate)
{
    const core::FabParams fab;
    const auto rows = [&fab](PackagingStyle style) {
        return PackagePlan::compile(
                   heteroSpec(style,
                              core::YieldModel::NegativeBinomial),
                   fab)
            .rowCount();
    };
    EXPECT_EQ(rows(PackagingStyle::Monolithic), 1u);
    EXPECT_EQ(rows(PackagingStyle::OrganicSubstrate), 4u);
    EXPECT_EQ(rows(PackagingStyle::SiliconInterposer), 4u);
    // 3D stacks have no substrate row.
    EXPECT_EQ(rows(PackagingStyle::Stacked3D), 3u);
}

TEST(PackagePlanTest, BoundInputsMatchMutatedOracleBitwise)
{
    const std::vector<core::EvalInput> bindings = {
        core::EvalInput::CiFab, core::EvalInput::Abatement};
    for (const PackagingStyle style : kPackagingStyles) {
        const PackageSpec spec =
            heteroSpec(style, core::YieldModel::Murphy);
        const PackagePlan plan =
            PackagePlan::compile(spec, core::FabParams{}, bindings);
        for (const double ci : {30.0, 365.0, 700.0}) {
            for (const double abatement : {0.90, 0.97, 1.0}) {
                core::FabParams fab;
                fab.ci_fab = util::gramsPerKilowattHour(ci);
                fab.abatement = abatement;
                const double values[] = {ci, abatement};
                EXPECT_EQ(plan.evaluate(values),
                          util::asGrams(
                              evaluatePackage(spec, fab).total))
                    << packagingStyleName(style) << " ci " << ci
                    << " abatement " << abatement;
            }
        }
    }
}

TEST(PackagePlanTest, BatchMatchesScalarBitwise)
{
    // A ragged, non-multiple-of-SIMD-width sample count over the full
    // fab-CI range; the SoA kernel must reproduce the scalar loop
    // bit-for-bit (the same contract core::EvalPlan keeps).
    constexpr std::size_t kSamples = 257;
    std::vector<double> ci(kSamples);
    for (std::size_t i = 0; i < kSamples; ++i) {
        ci[i] = 30.0 + (700.0 - 30.0) * static_cast<double>(i) /
                           static_cast<double>(kSamples - 1);
    }
    const std::vector<core::EvalInput> bindings = {
        core::EvalInput::CiFab};
    const double *columns[] = {ci.data()};
    for (const PackagingStyle style : kPackagingStyles) {
        for (const core::YieldModel model : kYieldModels) {
            const PackagePlan plan = PackagePlan::compile(
                heteroSpec(style, model), core::FabParams{},
                bindings);
            std::vector<double> batch(kSamples);
            std::vector<double> scratch(kSamples);
            plan.evaluateBatch(kSamples, columns, batch.data(),
                               scratch.data());
            for (std::size_t i = 0; i < kSamples; ++i) {
                EXPECT_EQ(batch[i], plan.evaluate(&ci[i]))
                    << packagingStyleName(style) << " / "
                    << core::yieldModelName(model) << " sample " << i;
            }
        }
    }
}

TEST(PackagePlanTest, BaselineMatchesUnboundEvaluate)
{
    const PackagePlan plan = PackagePlan::compile(
        heteroSpec(PackagingStyle::SiliconInterposer,
                   core::YieldModel::Poisson),
        core::FabParams{});
    EXPECT_EQ(util::asGrams(plan.baseline()), plan.evaluate());
    EXPECT_EQ(plan.inputCount(), 0u);
}

// ---------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------

class PackageDeathTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ::testing::FLAGS_gtest_death_test_style = "threadsafe";
        spec_ = heteroSpec(PackagingStyle::OrganicSubstrate,
                           core::YieldModel::NegativeBinomial);
    }

    PackageSpec spec_;
};

TEST_F(PackageDeathTest, EmptyChipletListIsFatal)
{
    spec_.chiplets.clear();
    EXPECT_EXIT(validatePackageSpec(spec_),
                ::testing::ExitedWithCode(1), "empty chiplet list");
}

TEST_F(PackageDeathTest, NonPositiveCountOrAreaIsFatal)
{
    PackageSpec bad = spec_;
    bad.chiplets[0].count = 0;
    EXPECT_EXIT(validatePackageSpec(bad),
                ::testing::ExitedWithCode(1), "count must be >= 1");
    bad = spec_;
    bad.chiplets[1].area = squareMillimeters(0.0);
    EXPECT_EXIT(validatePackageSpec(bad),
                ::testing::ExitedWithCode(1), "area must be positive");
}

TEST_F(PackageDeathTest, NegativeOverheadsAreFatal)
{
    PackageSpec bad = spec_;
    bad.substrate_area_factor = -0.1;
    EXPECT_EXIT(validatePackageSpec(bad),
                ::testing::ExitedWithCode(1), "substrate area factor");
    bad = spec_;
    bad.assembly_overhead_fraction = -0.5;
    EXPECT_EXIT(validatePackageSpec(bad),
                ::testing::ExitedWithCode(1),
                "assembly overhead fraction");
    bad = spec_;
    bad.d2d_energy_pj_per_bit = -1.0;
    EXPECT_EXIT(validatePackageSpec(bad),
                ::testing::ExitedWithCode(1), "die-to-die energy");
    bad = heteroSpec(PackagingStyle::Stacked3D,
                     core::YieldModel::Poisson);
    bad.tsv_area_overhead = -0.05;
    EXPECT_EXIT(validatePackageSpec(bad),
                ::testing::ExitedWithCode(1), "TSV area overhead");
}

TEST_F(PackageDeathTest, NonPositiveSubstrateNodeIsFatal)
{
    spec_.substrate_node_nm = 0.0;
    EXPECT_EXIT(validatePackageSpec(spec_),
                ::testing::ExitedWithCode(1), "substrate node");
}

TEST_F(PackageDeathTest, BondYieldOutsideUnitIntervalIsFatal)
{
    PackageSpec bad = spec_;
    bad.bond_yield = 0.0;
    EXPECT_EXIT(validatePackageSpec(bad),
                ::testing::ExitedWithCode(1), "bond yield");
    bad.bond_yield = 1.5;
    EXPECT_EXIT(validatePackageSpec(bad),
                ::testing::ExitedWithCode(1), "bond yield");
}

TEST_F(PackageDeathTest, TsvOutsideStackedStyleIsFatal)
{
    spec_.tsv_area_overhead = 0.05;
    EXPECT_EXIT(validatePackageSpec(spec_),
                ::testing::ExitedWithCode(1), "3D stacks");
}

TEST_F(PackageDeathTest, MultiDieMonolithicIsFatal)
{
    PackageSpec bad = heteroSpec(PackagingStyle::Monolithic,
                                 core::YieldModel::Poisson);
    bad.chiplets[0].count = 2;
    EXPECT_EXIT(validatePackageSpec(bad),
                ::testing::ExitedWithCode(1), "exactly one die");
}

TEST_F(PackageDeathTest, UnknownStyleNameIsFatal)
{
    EXPECT_EXIT(packagingStyleByName("bogus"),
                ::testing::ExitedWithCode(1), "unknown packaging");
}

TEST_F(PackageDeathTest, PlanRejectsNonFabBindings)
{
    const std::vector<core::EvalInput> yield_binding = {
        core::EvalInput::Yield};
    EXPECT_EXIT(PackagePlan::compile(spec_, core::FabParams{},
                                     yield_binding),
                ::testing::ExitedWithCode(1), "defect models");
    const std::vector<core::EvalInput> epa_binding = {
        core::EvalInput::Epa};
    EXPECT_EXIT(PackagePlan::compile(spec_, core::FabParams{},
                                     epa_binding),
                ::testing::ExitedWithCode(1), "");
}

// ---------------------------------------------------------------------
// Legacy homogeneous wrapper
// ---------------------------------------------------------------------

TEST(ChipletWrapper, MapsOntoPackagingOracle)
{
    const core::FabParams fab;
    const ChipletParams params;
    for (const int n : {1, 3, 8}) {
        const PackageSpec spec = chipletPackageSpec(
            squareMillimeters(600.0), n, 7.0, params);
        EXPECT_EQ(spec.style, n == 1
                                  ? PackagingStyle::Monolithic
                                  : PackagingStyle::OrganicSubstrate);
        EXPECT_EQ(spec.dieCount(), n);
        EXPECT_EQ(spec.bond_yield, 1.0);
        const PackageResult result = evaluatePackage(spec, fab);
        const ChipletPoint point = evaluateChiplets(
            squareMillimeters(600.0), n, 7.0, fab, params);
        // Unit bond yield: the wrapper's three-component total is the
        // package total, bit for bit.
        EXPECT_EQ(util::asGrams(point.total()),
                  util::asGrams(result.total));
        EXPECT_EQ(point.chiplet_yield, result.min_die_yield);
    }
}

TEST(ChipletWrapper, InvalidParamsAreFatal)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    const core::FabParams fab;
    ChipletParams params;
    params.interface_overhead = -0.1;
    EXPECT_EXIT(evaluateChiplets(squareMillimeters(100.0), 2, 7.0,
                                 fab, params),
                ::testing::ExitedWithCode(1), "interface overhead");
    params = ChipletParams{};
    params.interposer_area_factor = -1.0;
    EXPECT_EXIT(evaluateChiplets(squareMillimeters(100.0), 2, 7.0,
                                 fab, params),
                ::testing::ExitedWithCode(1), "interposer area");
    params = ChipletParams{};
    params.interposer_node_nm = 0.0;
    EXPECT_EXIT(evaluateChiplets(squareMillimeters(100.0), 2, 7.0,
                                 fab, params),
                ::testing::ExitedWithCode(1), "interposer node");
    params = ChipletParams{};
    params.assembly_overhead_fraction = -0.25;
    EXPECT_EXIT(evaluateChiplets(squareMillimeters(100.0), 2, 7.0,
                                 fab, params),
                ::testing::ExitedWithCode(1), "assembly overhead");
}

} // namespace
} // namespace act::pkg
