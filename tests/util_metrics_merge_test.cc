/**
 * @file
 * Tests for the act.metrics.v1 document (obs/metrics_doc): snapshot
 * serialization, the merge semantics (counters sum, histograms merge
 * bucket-wise, gauges concatenate), schema rejection, and the
 * Prometheus rendering. The MetricsFileValidation test doubles as the
 * CI validator: set `ACT_METRICS_VALIDATE=<file>` to check an
 * externally produced (e.g. `act merge --metrics-out`) document.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "config/json.h"
#include "obs/metrics_doc.h"
#include "util/metrics.h"

namespace {

using namespace act;

config::JsonValue
parseDoc(const std::string &text)
{
    return config::JsonValue::parse(text);
}

/** A synthetic one-process snapshot document. */
config::JsonValue
snapshotDoc(double items, double gauge, double low_bucket,
            double high_bucket)
{
    config::JsonObject counters;
    counters["sweep.items"] = config::JsonValue(items);

    config::JsonObject gauges;
    config::JsonObject gauge_obj;
    gauge_obj["values"] =
        config::JsonValue(config::JsonArray{config::JsonValue(gauge)});
    gauge_obj["min"] = config::JsonValue(gauge);
    gauge_obj["max"] = config::JsonValue(gauge);
    gauge_obj["mean"] = config::JsonValue(gauge);
    gauges["pool.util"] = config::JsonValue(std::move(gauge_obj));

    config::JsonObject histogram;
    histogram["bounds"] = config::JsonValue(config::JsonArray{
        config::JsonValue(10.0), config::JsonValue(100.0)});
    histogram["counts"] = config::JsonValue(config::JsonArray{
        config::JsonValue(low_bucket), config::JsonValue(high_bucket),
        config::JsonValue(0.0)});
    histogram["count"] =
        config::JsonValue(low_bucket + high_bucket);
    histogram["sum"] =
        config::JsonValue(5.0 * low_bucket + 50.0 * high_bucket);
    histogram["min"] = config::JsonValue(low_bucket > 0.0 ? 5.0 : 50.0);
    histogram["max"] =
        config::JsonValue(high_bucket > 0.0 ? 50.0 : 5.0);
    config::JsonObject histograms;
    histograms["chunk_us"] = config::JsonValue(std::move(histogram));

    config::JsonObject doc;
    doc["format"] = config::JsonValue(obs::kMetricsFormat);
    doc["counters"] = config::JsonValue(std::move(counters));
    doc["gauges"] = config::JsonValue(std::move(gauges));
    doc["histograms"] = config::JsonValue(std::move(histograms));
    return config::JsonValue(std::move(doc));
}

TEST(MetricsDocTest, SnapshotSerializesAndValidates)
{
    util::setMetricsEnabled(true);
    auto &registry = util::MetricsRegistry::instance();
    registry.counter("merge_test.count").add(7);
    registry.gauge("merge_test.gauge").set(0.25);
    auto &histogram =
        registry.histogram("merge_test.hist", {1.0, 10.0});
    histogram.observe(0.5);
    histogram.observe(5.0);
    histogram.observe(50.0);
    util::setMetricsEnabled(false);

    const config::JsonValue doc =
        obs::metricsToJson(registry.snapshot());
    obs::validateMetricsDoc(doc);
    EXPECT_EQ(doc.stringOr("format", ""), obs::kMetricsFormat);
    EXPECT_EQ(doc.at("counters").at("merge_test.count").asNumber(),
              7.0);

    const config::JsonValue &hist =
        doc.at("histograms").at("merge_test.hist");
    // Two finite bounds serialize; the +inf overflow bucket is the
    // extra counts entry, never an (unserializable) infinite bound.
    EXPECT_EQ(hist.at("bounds").asArray().size(), 2u);
    EXPECT_EQ(hist.at("counts").asArray().size(), 3u);
    EXPECT_EQ(hist.at("count").asNumber(), 3.0);
    EXPECT_EQ(hist.at("min").asNumber(), 0.5);
    EXPECT_EQ(hist.at("max").asNumber(), 50.0);

    // Serialization must be deterministic for byte-compare workflows.
    EXPECT_EQ(doc.dump(),
              obs::metricsToJson(registry.snapshot()).dump());
}

TEST(MetricsDocTest, MergeOfShardsEqualsOneProcessTotals)
{
    // Three "shards" whose work sums to one known single-process run.
    const std::vector<config::JsonValue> shards = {
        snapshotDoc(4000, 0.5, 3, 1),
        snapshotDoc(4000, 0.7, 2, 0),
        snapshotDoc(2000, 0.6, 0, 4),
    };
    const config::JsonValue merged = obs::mergeMetricsDocs(shards);
    obs::validateMetricsDoc(merged);

    // Counters sum exactly (doubles are exact for integral counts).
    EXPECT_EQ(merged.at("counters").at("sweep.items").asNumber(),
              10000.0);

    // Histograms merge bucket-wise and re-derive the statistics.
    const config::JsonValue &hist =
        merged.at("histograms").at("chunk_us");
    EXPECT_EQ(hist.at("counts").asArray()[0].asNumber(), 5.0);
    EXPECT_EQ(hist.at("counts").asArray()[1].asNumber(), 5.0);
    EXPECT_EQ(hist.at("count").asNumber(), 10.0);
    EXPECT_EQ(hist.at("sum").asNumber(), 5.0 * 5.0 + 50.0 * 5.0);
    EXPECT_EQ(hist.at("min").asNumber(), 5.0);
    EXPECT_EQ(hist.at("max").asNumber(), 50.0);

    // Gauges keep every per-shard value plus min/max/mean.
    const config::JsonValue &gauge =
        merged.at("gauges").at("pool.util");
    EXPECT_EQ(gauge.at("values").asArray().size(), 3u);
    EXPECT_EQ(gauge.at("min").asNumber(), 0.5);
    EXPECT_EQ(gauge.at("max").asNumber(), 0.7);
    EXPECT_NEAR(gauge.at("mean").asNumber(), 0.6, 1e-12);
}

TEST(MetricsDocTest, MergingOneDocumentIsTheIdentity)
{
    const config::JsonValue doc = snapshotDoc(123, 0.5, 2, 1);
    EXPECT_EQ(obs::mergeMetricsDocs({doc}).dump(), doc.dump());
}

TEST(MetricsDocTest, MergeToleratesEmptyAndAbsentSections)
{
    // No documents at all: an empty but valid document.
    const config::JsonValue empty = obs::mergeMetricsDocs({});
    obs::validateMetricsDoc(empty);
    EXPECT_TRUE(empty.at("counters").asObject().empty());

    // A format-only document (absent sections) merges cleanly with a
    // full one.
    const config::JsonValue minimal =
        parseDoc(R"({"format": "act.metrics.v1"})");
    const config::JsonValue merged =
        obs::mergeMetricsDocs({minimal, snapshotDoc(10, 0.5, 1, 0)});
    EXPECT_EQ(merged.at("counters").at("sweep.items").asNumber(),
              10.0);
}

TEST(MetricsDocDeathTest, RejectsIncompatibleHistogramBounds)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    config::JsonValue other = snapshotDoc(10, 0.5, 1, 0);
    other.asObject()["histograms"]
        .asObject()["chunk_us"]
        .asObject()["bounds"] = config::JsonValue(config::JsonArray{
        config::JsonValue(10.0), config::JsonValue(999.0)});
    EXPECT_EXIT(
        obs::mergeMetricsDocs({snapshotDoc(10, 0.5, 1, 0), other}),
        ::testing::ExitedWithCode(1), "incompatible bucket bounds");
}

TEST(MetricsDocDeathTest, RejectsWrongFormatAndBadShapes)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_EXIT(obs::validateMetricsDoc(parseDoc("{}")),
                ::testing::ExitedWithCode(1), "not a metrics document");
    EXPECT_EXIT(obs::validateMetricsDoc(parseDoc(
                    R"({"format": "act.metrics.v1",
                        "counters": {"x": -1}})")),
                ::testing::ExitedWithCode(1), "non-negative");
    // counts must be bounds + 1 (the overflow bucket).
    EXPECT_EXIT(obs::validateMetricsDoc(parseDoc(
                    R"({"format": "act.metrics.v1", "histograms":
                        {"h": {"bounds": [1, 2], "counts": [0, 0],
                               "count": 0, "sum": 0, "min": 0,
                               "max": 0}}})")),
                ::testing::ExitedWithCode(1), "bucket counts");
}

TEST(MetricsDocTest, PrometheusRenderingIsWellFormed)
{
    const config::JsonValue merged = obs::mergeMetricsDocs(
        {snapshotDoc(4000, 0.5, 3, 1), snapshotDoc(6000, 0.7, 2, 0)});
    const std::string prom = obs::renderPrometheus(merged);

    EXPECT_NE(prom.find("# TYPE act_sweep_items counter\n"),
              std::string::npos);
    EXPECT_NE(prom.find("act_sweep_items 10000\n"), std::string::npos);
    // Multi-shard gauges carry a shard label.
    EXPECT_NE(prom.find("act_pool_util{shard=\"0\"} 0.5\n"),
              std::string::npos);
    // Histogram buckets are cumulative and end at +Inf == _count.
    EXPECT_NE(prom.find("act_chunk_us_bucket{le=\"10\"} 5\n"),
              std::string::npos);
    EXPECT_NE(prom.find("act_chunk_us_bucket{le=\"+Inf\"} 6\n"),
              std::string::npos);
    EXPECT_NE(prom.find("act_chunk_us_count 6\n"), std::string::npos);
}

TEST(MetricsDocTest, TableRenderingShowsMeans)
{
    const std::string table =
        obs::renderMetricsDocTable(snapshotDoc(100, 0.5, 3, 1));
    EXPECT_NE(table.find("sweep.items"), std::string::npos);
    EXPECT_NE(table.find("histogram"), std::string::npos);
    // mean = (5*3 + 50*1) / 4 = 16.25
    EXPECT_NE(table.find("16.25"), std::string::npos);
}

/**
 * CI hook: when ACT_METRICS_VALIDATE names a metrics document produced
 * by a real run (e.g. `act merge --metrics-out`), validate its schema
 * and require the sweep counters the engine always maintains.
 */
TEST(MetricsFileValidation, ExternalFile)
{
    const char *path = std::getenv("ACT_METRICS_VALIDATE");
    if (path == nullptr || *path == '\0')
        GTEST_SKIP() << "ACT_METRICS_VALIDATE not set";
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const config::JsonValue doc =
        config::JsonValue::parse(buffer.str());
    obs::validateMetricsDoc(doc);
    EXPECT_GT(doc.at("counters").at("sweep.items").asNumber(), 0.0)
        << "expected the engine's sweep.items counter";
    EXPECT_GT(doc.at("counters").at("sweep.chunks").asNumber(), 0.0)
        << "expected the engine's sweep.chunks counter";
}

} // namespace
