/** @file Integration tests for the Fig. 8 mobile design-space study. */

#include <gtest/gtest.h>

#include "dse/scoreboard.h"
#include "mobile/platform.h"

namespace act::mobile {
namespace {

const core::FabParams kFab;

TEST(Figure8, DesignSpaceCoversAllChipsets)
{
    EXPECT_EQ(mobileDesignSpace(kFab).size(), 13u);
}

TEST(Figure8, PaperOptimaPerMetric)
{
    // Section 4.2: "The optimal hardware in terms of EDP, EDAP,
    // embodied carbon, CEP, and C2EP are the Kirin 990, Snapdragon
    // 865, Snapdragon 835, Kirin 980, and Kirin 980, respectively."
    const dse::Scoreboard scoreboard(mobileDesignSpace(kFab));
    EXPECT_EQ(scoreboard.winner(core::Metric::EDP), "Kirin 990");
    EXPECT_EQ(scoreboard.winner(core::Metric::EDAP), "Snapdragon 865");
    EXPECT_EQ(scoreboard.winner(core::Metric::CEP), "Kirin 980");
    EXPECT_EQ(scoreboard.winner(core::Metric::C2EP), "Kirin 980");
}

TEST(Figure8, EmbodiedMinimumIsSnapdragon835)
{
    const auto space = mobileDesignSpace(kFab);
    const core::DesignPoint *best = &space.front();
    for (const auto &point : space) {
        if (point.embodied < best->embodied)
            best = &point;
    }
    EXPECT_EQ(best->name, "Snapdragon 835");
}

TEST(Figure8, EnergyAndCarbonOptimaDiffer)
{
    // The core message of Section 4: carbon-aware metrics pick
    // different hardware than energy-centric ones.
    const dse::Scoreboard scoreboard(mobileDesignSpace(kFab));
    EXPECT_NE(scoreboard.winner(core::Metric::EDP),
              scoreboard.winner(core::Metric::C2EP));
    EXPECT_NE(scoreboard.winner(core::Metric::EDAP),
              scoreboard.winner(core::Metric::CEP));
}

TEST(Platform, EmbodiedBreakdownComposition)
{
    const auto soc =
        data::SocDatabase::instance().byNameOrDie("Snapdragon 845");
    const PlatformEmbodied embodied = platformEmbodied(soc, kFab);
    EXPECT_GT(util::asGrams(embodied.soc), 0.0);
    EXPECT_GT(util::asGrams(embodied.dram), 0.0);
    EXPECT_DOUBLE_EQ(util::asGrams(embodied.packaging), 300.0);
    EXPECT_NEAR(util::asGrams(embodied.total()),
                util::asGrams(embodied.soc) +
                    util::asGrams(embodied.dram) + 300.0,
                1e-9);
    // DRAM: 6 GB of LPDDR4 at 48 g/GB.
    EXPECT_DOUBLE_EQ(util::asGrams(embodied.dram), 288.0);
}

TEST(Platform, ReferenceDelayInvertsScore)
{
    const auto soc =
        data::SocDatabase::instance().byNameOrDie("Kirin 990");
    EXPECT_NEAR(util::asSeconds(referenceDelay(soc)),
                kReferenceScoreSeconds / soc.aggregateScore(), 1e-12);
    EXPECT_NEAR(util::asJoules(referenceEnergy(soc)),
                util::asWatts(soc.tdp) *
                    util::asSeconds(referenceDelay(soc)),
                1e-9);
}

TEST(Platform, GreenerFabLowersEveryPlatform)
{
    const auto base = mobileDesignSpace(kFab);
    const auto green = mobileDesignSpace(core::FabParams::renewable());
    ASSERT_EQ(base.size(), green.size());
    for (std::size_t i = 0; i < base.size(); ++i) {
        EXPECT_LT(util::asGrams(green[i].embodied),
                  util::asGrams(base[i].embodied))
            << base[i].name;
        // Delay/energy are fab-independent.
        EXPECT_DOUBLE_EQ(util::asSeconds(green[i].delay),
                         util::asSeconds(base[i].delay));
    }
}

/** Property: faster chipsets have strictly smaller delay points. */
class PlatformOrdering
    : public ::testing::TestWithParam<data::SocFamily> {};

TEST_P(PlatformOrdering, DelayOrderFollowsPerformance)
{
    const auto chipsets =
        data::SocDatabase::instance().familyByYear(GetParam());
    for (std::size_t i = 1; i < chipsets.size(); ++i) {
        EXPECT_LT(
            util::asSeconds(referenceDelay(chipsets[i])),
            util::asSeconds(referenceDelay(chipsets[i - 1])));
    }
}

INSTANTIATE_TEST_SUITE_P(Families, PlatformOrdering,
                         ::testing::Values(data::SocFamily::Exynos,
                                           data::SocFamily::Snapdragon,
                                           data::SocFamily::Kirin));

} // namespace
} // namespace act::mobile
