/**
 * @file
 * Trace-merge tests: per-process Chrome traces combine into one
 * timeline with pids remapped per source file, timestamps aligned on
 * the wall-clock epochs, per-file epoch anchors consumed, and
 * process_name labels added. The output must still satisfy the trace
 * validator in util_trace_test (exercised in CI via
 * ACT_TRACE_VALIDATE_MERGED).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "config/json.h"
#include "obs/trace_merge.h"

namespace {

using namespace act;

/** A minimal one-process trace: an epoch anchor plus one span. */
config::JsonValue
traceDoc(double epoch_us, double span_ts_us, const std::string &name)
{
    const std::string text = R"({
      "displayTimeUnit": "ns",
      "traceEvents": [
        {"name": "trace_epoch", "cat": "__metadata", "ph": "M",
         "pid": 1, "tid": 0, "ts": 0,
         "args": {"wall_epoch_us": )" +
                             std::to_string(epoch_us) + R"(}},
        {"name": ")" + name + R"(", "cat": "test", "ph": "X",
         "pid": 1, "tid": 1, "ts": )" +
                             std::to_string(span_ts_us) +
                             R"(, "dur": 5}
      ]
    })";
    return config::JsonValue::parse(text);
}

TEST(TraceMergeTest, AlignsEpochsAndRemapsPids)
{
    // Process B started 1000 us after process A.
    const std::vector<config::JsonValue> traces = {
        traceDoc(5'000'000, 10.0, "a_span"),
        traceDoc(5'001'000, 10.0, "b_span"),
    };
    const config::JsonValue merged = obs::mergeTraceDocs(
        traces, {"runs/a.trace.json", "runs/b.trace.json"});

    const config::JsonArray &events =
        merged.at("traceEvents").asArray();
    // 1 fresh epoch + 2 process_name labels + 2 spans; the per-file
    // epoch anchors are consumed by the alignment.
    ASSERT_EQ(events.size(), 5u);

    double a_ts = -1.0, b_ts = -1.0;
    int a_pid = 0, b_pid = 0;
    std::size_t epoch_events = 0;
    std::vector<std::string> process_names;
    for (const config::JsonValue &event : events) {
        const std::string name = event.at("name").asString();
        if (name == "trace_epoch") {
            ++epoch_events;
            // The merged epoch is the earliest input epoch.
            EXPECT_EQ(event.at("args").at("wall_epoch_us").asNumber(),
                      5'000'000.0);
        } else if (name == "process_name") {
            process_names.push_back(
                event.at("args").at("name").asString());
        } else if (name == "a_span") {
            a_ts = event.at("ts").asNumber();
            a_pid = static_cast<int>(event.at("pid").asInteger());
        } else if (name == "b_span") {
            b_ts = event.at("ts").asNumber();
            b_pid = static_cast<int>(event.at("pid").asInteger());
        }
    }
    EXPECT_EQ(epoch_events, 1u);
    // pids follow input order, 1-based; labels are basenames.
    EXPECT_EQ(a_pid, 1);
    EXPECT_EQ(b_pid, 2);
    ASSERT_EQ(process_names.size(), 2u);
    EXPECT_EQ(process_names[0], "a.trace.json");
    EXPECT_EQ(process_names[1], "b.trace.json");
    // A's span keeps its offset; B's shifts by the 1000 us epoch
    // delta so both sit on one wall-clock-aligned axis.
    EXPECT_EQ(a_ts, 10.0);
    EXPECT_EQ(b_ts, 1010.0);
}

TEST(TraceMergeTest, MissingEpochAlignsWithZeroDelta)
{
    config::JsonValue no_epoch = config::JsonValue::parse(R"({
      "traceEvents": [
        {"name": "s", "cat": "test", "ph": "X", "pid": 1, "tid": 1,
         "ts": 7, "dur": 1}
      ]
    })");
    const config::JsonValue merged =
        obs::mergeTraceDocs({no_epoch}, {"legacy.json"});
    for (const config::JsonValue &event :
         merged.at("traceEvents").asArray()) {
        if (event.at("name").asString() == "s")
            EXPECT_EQ(event.at("ts").asNumber(), 7.0);
    }
}

TEST(TraceMergeDeathTest, RejectsNonTraceInput)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_EXIT(
        obs::mergeTraceDocs({config::JsonValue::parse("{}")},
                            {"bad.json"}),
        ::testing::ExitedWithCode(1), "not a Chrome trace");
}

} // namespace
