/**
 * @file
 * Trace-writer tests: the emitted Chrome trace-event file parses with
 * the in-repo config JSON parser, events carry well-formed thread ids
 * and phases, and spans on one thread nest properly. The
 * TraceFileValidation test doubles as the CI trace validator: set
 * `ACT_TRACE_VALIDATE=<file>` to check an externally produced trace
 * (e.g. a fig08 run with ACT_TRACE on).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "config/json.h"
#include "util/parallel.h"
#include "util/trace.h"

namespace {

using namespace act;

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

struct ParsedSpan
{
    std::string name;
    std::string category;
    double start_us = 0.0;
    double end_us = 0.0;
};

struct TraceSummary
{
    std::size_t events = 0;
    std::set<std::string> categories;
    std::set<std::string> metadata_names;
    std::set<std::int64_t> pids;
    /** wall_epoch_us values from trace_epoch metadata events. */
    std::vector<double> epochs;
    /** Keyed by (pid, tid): merged traces reuse tids across pids. */
    std::map<std::pair<std::int64_t, std::int64_t>,
             std::vector<ParsedSpan>>
        spans_by_tid;
};

/**
 * Validate one trace document: the traceEvents schema, phase/field
 * well-formedness, and -- per thread id -- that complete events form a
 * proper nesting (RAII spans can contain or follow each other on a
 * thread but never partially overlap).
 */
TraceSummary
validateTrace(const config::JsonValue &root)
{
    TraceSummary summary;
    EXPECT_TRUE(root.isObject()) << "trace root must be an object";
    const config::JsonValue &events = root.at("traceEvents");
    EXPECT_TRUE(events.isArray());
    for (const config::JsonValue &event : events.asArray()) {
        ++summary.events;
        EXPECT_TRUE(event.isObject());
        EXPECT_TRUE(event.at("name").isString());
        EXPECT_TRUE(event.at("cat").isString());
        EXPECT_TRUE(event.at("ts").isNumber());
        EXPECT_GE(event.at("ts").asNumber(), 0.0);
        EXPECT_TRUE(event.at("pid").isNumber());
        summary.pids.insert(event.at("pid").asInteger());
        const std::int64_t tid = event.at("tid").asInteger();
        const std::string &phase = event.at("ph").asString();
        EXPECT_TRUE(phase == "X" || phase == "i" || phase == "M")
            << "unexpected phase '" << phase << "'";
        if (phase == "M") {
            // Metadata events (trace_epoch, process_name) ride on
            // tid 0 at ts 0 and never form spans.
            EXPECT_GE(tid, 0);
            const std::string &name = event.at("name").asString();
            summary.metadata_names.insert(name);
            if (name == "trace_epoch") {
                summary.epochs.push_back(
                    event.at("args").at("wall_epoch_us").asNumber());
            }
            continue;
        }
        EXPECT_GE(tid, 1);
        summary.categories.insert(event.at("cat").asString());
        if (phase == "X") {
            EXPECT_TRUE(event.at("dur").isNumber());
            EXPECT_GE(event.at("dur").asNumber(), 0.0);
            ParsedSpan span;
            span.name = event.at("name").asString();
            span.category = event.at("cat").asString();
            span.start_us = event.at("ts").asNumber();
            span.end_us = span.start_us + event.at("dur").asNumber();
            summary
                .spans_by_tid[{event.at("pid").asInteger(), tid}]
                .push_back(std::move(span));
        }
    }

    // Nesting check per thread: sweep spans by start time (ties:
    // longer first, i.e. outermost first) and keep a stack of open
    // spans; every span must be fully contained in the enclosing one.
    for (auto &[key, spans] : summary.spans_by_tid) {
        std::stable_sort(spans.begin(), spans.end(),
                         [](const ParsedSpan &a, const ParsedSpan &b) {
                             if (a.start_us != b.start_us)
                                 return a.start_us < b.start_us;
                             return a.end_us > b.end_us;
                         });
        std::vector<const ParsedSpan *> open;
        for (const ParsedSpan &span : spans) {
            while (!open.empty() &&
                   open.back()->end_us <= span.start_us) {
                open.pop_back();
            }
            if (!open.empty()) {
                EXPECT_LE(span.end_us, open.back()->end_us)
                    << "span '" << span.name << "' on pid "
                    << key.first << " tid " << key.second
                    << " partially overlaps '" << open.back()->name
                    << "'";
            }
            open.push_back(&span);
        }
    }
    return summary;
}

TEST(TraceTest, DisabledByDefaultAndSpansAreNoOps)
{
    ASSERT_FALSE(util::traceEnabled());
    EXPECT_TRUE(util::traceFile().empty());
    {
        TRACE_SPAN("test.off", "should_not_record");
    }
    util::traceInstant("test.off", "also_not_recorded");
    util::flushTrace(); // no file set: must be a no-op, not a crash
}

TEST(TraceTest, SpansProduceValidParseableJson)
{
    const std::string path = "util_trace_test_out.json";
    std::remove(path.c_str());
    util::setTraceFile(path);
    ASSERT_TRUE(util::traceEnabled());
    EXPECT_EQ(util::traceFile(), path);

    {
        TRACE_SPAN("test.outer", "outer");
        {
            TRACE_SPAN("test.inner", "inner");
        }
        {
            TRACE_SPAN("test.inner", "sibling");
        }
    }
    util::traceInstant("test.marker", "instant");

    // Spans emitted from pool worker threads must carry their own tids
    // and stay well-formed.
    util::setThreadCount(4);
    util::parallelFor(0, 32, 2, [](std::size_t i) {
        TRACE_SPAN("test.worker", "work#" + std::to_string(i));
    });
    util::setThreadCount(0);

    util::setTraceFile(""); // flush + disable
    ASSERT_FALSE(util::traceEnabled());

    const config::JsonValue root =
        config::JsonValue::parse(readFile(path));
    const TraceSummary summary = validateTrace(root);
    EXPECT_GE(summary.events, 5u);
    EXPECT_TRUE(summary.categories.count("test.outer"));
    EXPECT_TRUE(summary.categories.count("test.inner"));
    EXPECT_TRUE(summary.categories.count("test.worker"));
    EXPECT_TRUE(summary.categories.count("test.marker"));
    // util/parallel contributes its own spans around the parallelFor.
    EXPECT_TRUE(summary.categories.count("util.parallel"));

    // Every trace file carries its wall-clock epoch so `act
    // trace-merge` can align files from different processes.
    ASSERT_EQ(summary.epochs.size(), 1u);
    EXPECT_GT(summary.epochs[0], 0.0);

    // The inner spans must be contained in the outer one on its tid.
    bool outer_found = false;
    for (const auto &[tid, spans] : summary.spans_by_tid) {
        const auto outer = std::find_if(
            spans.begin(), spans.end(), [](const ParsedSpan &span) {
                return span.name == "outer";
            });
        if (outer == spans.end())
            continue;
        outer_found = true;
        for (const ParsedSpan &span : spans) {
            if (span.name != "inner" && span.name != "sibling")
                continue;
            EXPECT_GE(span.start_us, outer->start_us);
            EXPECT_LE(span.end_us, outer->end_us);
        }
    }
    EXPECT_TRUE(outer_found);
    std::remove(path.c_str());
}

TEST(TraceTest, NamesAreJsonEscaped)
{
    const std::string path = "util_trace_test_escape.json";
    std::remove(path.c_str());
    util::setTraceFile(path);
    {
        TRACE_SPAN("test.escape", "quote\"back\\slash\nnewline");
    }
    util::setTraceFile("");
    const config::JsonValue root =
        config::JsonValue::parse(readFile(path));
    bool found = false;
    for (const config::JsonValue &event :
         root.at("traceEvents").asArray()) {
        if (event.at("name").asString() ==
            "quote\"back\\slash\nnewline") {
            found = true;
        }
    }
    EXPECT_TRUE(found);
    std::remove(path.c_str());
}

/**
 * CI hook: when ACT_TRACE_VALIDATE names a trace file produced by a
 * real run (e.g. `ACT_TRACE=trace.json fig08_mobile_design_space`),
 * validate it and require the spans the instrumentation contract
 * promises (util/parallel, core::CpaCache, the bench harness).
 */
TEST(TraceFileValidation, ExternalFile)
{
    const char *path = std::getenv("ACT_TRACE_VALIDATE");
    if (path == nullptr || *path == '\0')
        GTEST_SKIP() << "ACT_TRACE_VALIDATE not set";
    const config::JsonValue root =
        config::JsonValue::parse(readFile(path));
    const TraceSummary summary = validateTrace(root);
    EXPECT_GT(summary.events, 0u);
    EXPECT_TRUE(summary.categories.count("util.parallel"))
        << "expected util/parallel spans";
    EXPECT_TRUE(summary.categories.count("core.cpa"))
        << "expected core::CpaCache miss spans";
    EXPECT_TRUE(summary.categories.count("bench"))
        << "expected a per-figure bench span";
}

/**
 * CI hook: when ACT_TRACE_VALIDATE_MERGED names an `act trace-merge`
 * output, validate it like any trace and require the merge artifacts:
 * one trace_epoch, one pid and process_name per source file.
 */
TEST(TraceFileValidation, MergedFile)
{
    const char *path = std::getenv("ACT_TRACE_VALIDATE_MERGED");
    if (path == nullptr || *path == '\0')
        GTEST_SKIP() << "ACT_TRACE_VALIDATE_MERGED not set";
    const config::JsonValue root =
        config::JsonValue::parse(readFile(path));
    const TraceSummary summary = validateTrace(root);
    EXPECT_GT(summary.events, 0u);
    EXPECT_EQ(summary.epochs.size(), 1u)
        << "merged trace must carry exactly one trace_epoch";
    EXPECT_GE(summary.pids.size(), 2u)
        << "expected each source trace on its own pid";
    EXPECT_TRUE(summary.metadata_names.count("process_name"))
        << "expected process_name labels for the merged pids";
}

} // namespace
