/**
 * @file
 * Metrics-registry tests: counter and histogram correctness under
 * concurrent updates from the util/parallel thread pool, disabled-mode
 * no-op behavior for gated instruments, and snapshot/rendering.
 */

#include <gtest/gtest.h>

#include <string>

#include "util/metrics.h"
#include "util/parallel.h"

namespace {

using namespace act;

/** Restores the metrics-enabled flag on scope exit. */
class ScopedMetricsEnabled
{
  public:
    explicit ScopedMetricsEnabled(bool enabled)
        : previous_(util::metricsEnabled())
    {
        util::setMetricsEnabled(enabled);
    }
    ~ScopedMetricsEnabled() { util::setMetricsEnabled(previous_); }

  private:
    bool previous_;
};

TEST(MetricsCounterTest, AddValueReset)
{
    util::Counter &counter =
        util::MetricsRegistry::instance().counter("test.counter.basic");
    counter.reset();
    EXPECT_EQ(counter.value(), 0u);
    counter.add();
    counter.add(41);
    EXPECT_EQ(counter.value(), 42u);
    counter.reset();
    EXPECT_EQ(counter.value(), 0u);
}

TEST(MetricsCounterTest, SameNameSameObject)
{
    util::Counter &first =
        util::MetricsRegistry::instance().counter("test.counter.same");
    util::Counter &second =
        util::MetricsRegistry::instance().counter("test.counter.same");
    EXPECT_EQ(&first, &second);
    first.reset();
    first.add(7);
    EXPECT_EQ(second.value(), 7u);
}

TEST(MetricsCounterTest, NotGatedByEnableFlag)
{
    ScopedMetricsEnabled disabled(false);
    util::Counter &counter = util::MetricsRegistry::instance().counter(
        "test.counter.ungated");
    counter.reset();
    counter.add(3);
    EXPECT_EQ(counter.value(), 3u);
}

TEST(MetricsCounterTest, ConcurrentAddsFromPool)
{
    constexpr std::size_t kIterations = 100'000;
    util::Counter &counter = util::MetricsRegistry::instance().counter(
        "test.counter.concurrent");
    counter.reset();
    for (std::size_t threads : {2u, 7u}) {
        util::setThreadCount(threads);
        util::parallelFor(0, kIterations, 0,
                          [&](std::size_t) { counter.add(); });
        util::setThreadCount(0);
        EXPECT_EQ(counter.value(), kIterations);
        counter.reset();
    }
}

TEST(MetricsGaugeTest, SetAndRead)
{
    util::Gauge &gauge =
        util::MetricsRegistry::instance().gauge("test.gauge.basic");
    gauge.set(12.5);
    EXPECT_DOUBLE_EQ(gauge.value(), 12.5);
    gauge.set(-3.0);
    EXPECT_DOUBLE_EQ(gauge.value(), -3.0);
}

TEST(MetricsHistogramTest, DisabledModeKeepsStatsButSkipsBuckets)
{
    ScopedMetricsEnabled disabled(false);
    util::Histogram &histogram =
        util::MetricsRegistry::instance().histogram(
            "test.histogram.disabled", {1.0, 10.0, 100.0});
    histogram.reset();
    histogram.observe(5.0);
    histogram.observe(50.0);
    // Summary statistics are always live (like counters) so snapshot
    // means work with metrics emission off...
    EXPECT_EQ(histogram.count(), 2u);
    EXPECT_DOUBLE_EQ(histogram.sum(), 55.0);
    EXPECT_DOUBLE_EQ(histogram.min(), 5.0);
    EXPECT_DOUBLE_EQ(histogram.max(), 50.0);
    // ...but the bucket scan stays gated.
    for (const std::uint64_t count : histogram.bucketCounts())
        EXPECT_EQ(count, 0u);
}

TEST(MetricsHistogramTest, BucketPlacementAndStats)
{
    ScopedMetricsEnabled enabled(true);
    util::Histogram &histogram =
        util::MetricsRegistry::instance().histogram(
            "test.histogram.buckets", {1.0, 10.0, 100.0});
    histogram.reset();
    histogram.observe(0.5);   // <= 1
    histogram.observe(1.0);   // <= 1 (bound is inclusive)
    histogram.observe(7.0);   // <= 10
    histogram.observe(90.0);  // <= 100
    histogram.observe(500.0); // overflow
    EXPECT_EQ(histogram.count(), 5u);
    EXPECT_DOUBLE_EQ(histogram.sum(), 598.5);
    EXPECT_DOUBLE_EQ(histogram.min(), 0.5);
    EXPECT_DOUBLE_EQ(histogram.max(), 500.0);
    const auto counts = histogram.bucketCounts();
    ASSERT_EQ(counts.size(), 4u);
    EXPECT_EQ(counts[0], 2u);
    EXPECT_EQ(counts[1], 1u);
    EXPECT_EQ(counts[2], 1u);
    EXPECT_EQ(counts[3], 1u);
    const double p50 = histogram.quantile(0.50);
    EXPECT_GE(p50, 0.5);
    EXPECT_LE(p50, 10.0);
    const double p95 = histogram.quantile(0.95);
    EXPECT_GE(p95, 90.0);
    EXPECT_LE(p95, 500.0);
}

TEST(MetricsHistogramTest, ConcurrentObservesFromPool)
{
    constexpr std::size_t kIterations = 50'000;
    ScopedMetricsEnabled enabled(true);
    util::Histogram &histogram =
        util::MetricsRegistry::instance().histogram(
            "test.histogram.concurrent", {0.5, 1.5});
    histogram.reset();
    util::setThreadCount(4);
    // Every observation is exactly 1.0, so the count, the sum (exact
    // in double for small integers), and the middle bucket must all
    // equal the iteration count for any interleaving.
    util::parallelFor(0, kIterations, 0,
                      [&](std::size_t) { histogram.observe(1.0); });
    util::setThreadCount(0);
    EXPECT_EQ(histogram.count(), kIterations);
    EXPECT_DOUBLE_EQ(histogram.sum(),
                     static_cast<double>(kIterations));
    EXPECT_DOUBLE_EQ(histogram.min(), 1.0);
    EXPECT_DOUBLE_EQ(histogram.max(), 1.0);
    const auto counts = histogram.bucketCounts();
    ASSERT_EQ(counts.size(), 3u);
    EXPECT_EQ(counts[1], kIterations);
}

TEST(MetricsRegistryTest, SnapshotAndRendering)
{
    ScopedMetricsEnabled enabled(true);
    util::MetricsRegistry &registry = util::MetricsRegistry::instance();
    util::Counter &counter = registry.counter("test.render.counter");
    counter.reset();
    counter.add(5);
    registry.gauge("test.render.gauge").set(2.25);
    util::Histogram &histogram =
        registry.histogram("test.render.histogram", {10.0, 20.0});
    histogram.reset();
    histogram.observe(15.0);

    const util::MetricsSnapshot snapshot = registry.snapshot();
    EXPECT_FALSE(snapshot.empty());
    bool counter_found = false;
    for (const auto &[name, value] : snapshot.counters) {
        if (name == "test.render.counter") {
            counter_found = true;
            EXPECT_EQ(value, 5u);
        }
    }
    EXPECT_TRUE(counter_found);
    bool histogram_found = false;
    for (const auto &entry : snapshot.histograms) {
        if (entry.name == "test.render.histogram") {
            histogram_found = true;
            EXPECT_EQ(entry.count, 1u);
            EXPECT_DOUBLE_EQ(entry.mean(), 15.0);
        }
    }
    EXPECT_TRUE(histogram_found);

    const std::string table = registry.renderTable();
    EXPECT_NE(table.find("test.render.counter"), std::string::npos);
    EXPECT_NE(table.find("test.render.histogram"), std::string::npos);
    const std::string csv = registry.renderCsv();
    EXPECT_NE(csv.find("test.render.gauge,gauge"), std::string::npos);
    EXPECT_NE(csv.find("test.render.counter,counter,5"),
              std::string::npos);
}

TEST(MetricsRegistryTest, PoolInstrumentsPopulateWhenEnabled)
{
    ScopedMetricsEnabled enabled(true);
    util::MetricsRegistry &registry = util::MetricsRegistry::instance();
    util::Histogram &chunk_us = registry.histogram("parallel.chunk_us");
    const std::uint64_t before = chunk_us.count();
    util::setThreadCount(3);
    util::parallelFor(0, 64, 8, [](std::size_t) {});
    util::setThreadCount(0);
    EXPECT_GT(chunk_us.count(), before);
    EXPECT_GT(registry.counter("parallel.jobs").value(), 0u);
    EXPECT_GT(registry.counter("parallel.chunks").value(), 0u);
}

} // namespace
