/**
 * @file
 * Tests for the NVDLA-class NPU model and the Section 7 studies
 * (Figs. 12 and 13).
 */

#include <gtest/gtest.h>

#include "accel/design_space.h"
#include "dse/scoreboard.h"

namespace act::accel {
namespace {

const core::FabParams kFab;

TEST(Network, LayerMacArithmetic)
{
    const ConvLayer layer{"l", 28, 28, 96, 48, 3};
    EXPECT_EQ(layer.macs(),
              static_cast<std::int64_t>(28) * 28 * 96 * 48 * 9);
}

TEST(Network, ReferenceBackboneShape)
{
    const Network &network = referenceVisionNetwork();
    EXPECT_GT(network.layers.size(), 30u);
    // ~4-6 GMAC per frame, a realistic vision workload.
    EXPECT_GT(network.totalMacs(), 3'000'000'000LL);
    EXPECT_LT(network.totalMacs(), 7'000'000'000LL);
    // The first layer ingests RGB.
    EXPECT_EQ(network.layers.front().in_channels, 3);
}

TEST(Network, WideBackboneMapsWell)
{
    // The ablation network keeps near-ideal mapping utilization on
    // wide arrays, unlike the dense reference backbone. (At 2048 MACs
    // both become DRAM-bandwidth bound, so compare at 1024 where the
    // mapping effect dominates.)
    const NpuModel model;
    const double wide_util =
        model.evaluate(wideVisionNetwork(), {1024, 16.0}).utilization;
    const double dense_util =
        model.evaluate(referenceVisionNetwork(), {1024, 16.0})
            .utilization;
    EXPECT_GT(wide_util, 0.80);
    EXPECT_GT(wide_util, dense_util + 0.1);
}

TEST(Network, SweepOverloadsAgree)
{
    const NpuModel model;
    const core::FabParams fab;
    const auto a = sweepDesignSpace(model, 16.0, fab);
    const auto b =
        sweepDesignSpace(model, referenceVisionNetwork(), 16.0, fab);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].evaluation.elapsed_cycles,
                  b[i].evaluation.elapsed_cycles);
    }
}

TEST(NpuModel, AtomicsCoverTheSweep)
{
    for (int macs : macSweep()) {
        const Atomics atomics = atomicsFor(macs);
        EXPECT_EQ(atomics.input_channels * atomics.output_channels,
                  macs);
    }
    EXPECT_EXIT(atomicsFor(100), ::testing::ExitedWithCode(1), "");
    EXPECT_EXIT(atomicsFor(4096), ::testing::ExitedWithCode(1), "");
}

TEST(NpuModel, AreaGrowsWithMacsAndOlderNodes)
{
    const NpuModel model;
    double prev = 0.0;
    for (int macs : macSweep()) {
        const double area = util::asSquareMillimeters(
            model.area({macs, 16.0}));
        EXPECT_GT(area, prev);
        prev = area;
        EXPECT_GT(util::asSquareMillimeters(model.area({macs, 28.0})),
                  area);
    }
}

TEST(NpuModel, ClockImprovesAtNewerNodes)
{
    const NpuModel model;
    EXPECT_GT(model.clockHz(16.0), model.clockHz(28.0));
    EXPECT_DOUBLE_EQ(model.clockHz(16.0), 1.0e9);
}

TEST(NpuModel, LayerTimingComputeAndMemoryBound)
{
    const NpuModel model;
    // A compute-heavy layer is compute bound on a small array.
    const ConvLayer compute_heavy{"c", 56, 56, 96, 96, 3};
    const LayerTiming small =
        model.evaluateLayer(compute_heavy, {64, 16.0});
    EXPECT_EQ(small.elapsed_cycles, small.compute_cycles);
    EXPECT_GT(small.compute_cycles, small.memory_cycles);
    // A weight-heavy low-spatial layer is memory bound on a big array.
    const ConvLayer weight_heavy{"w", 7, 7, 512, 512, 3};
    const LayerTiming big =
        model.evaluateLayer(weight_heavy, {2048, 16.0});
    EXPECT_EQ(big.elapsed_cycles, big.memory_cycles);
    EXPECT_GT(big.memory_cycles, big.compute_cycles);
}

TEST(NpuModel, UtilizationDegradesOnWideArrays)
{
    const NpuModel model;
    const Network &network = referenceVisionNetwork();
    const double u256 = model.evaluate(network, {256, 16.0}).utilization;
    const double u1024 =
        model.evaluate(network, {1024, 16.0}).utilization;
    const double u2048 =
        model.evaluate(network, {2048, 16.0}).utilization;
    EXPECT_GT(u256, 0.95);
    EXPECT_LT(u1024, 0.80);
    EXPECT_LT(u2048, u1024);
}

TEST(Figure12, ThroughputMonotonicallyIncreases)
{
    const NpuModel model;
    const auto entries = sweepDesignSpace(model, 16.0, kFab);
    for (std::size_t i = 1; i < entries.size(); ++i) {
        EXPECT_GT(entries[i].evaluation.frames_per_second,
                  entries[i - 1].evaluation.frames_per_second);
    }
}

TEST(Figure12, PaperMetricOptima)
{
    // "the optimal configuration for CDP, CE2P, CEP, C2EP are 1024,
    // 512, 256, 128 MACs, respectively" while performance and EDP
    // favor the most parallel design (2048).
    const NpuModel model;
    const auto entries = sweepDesignSpace(model, 16.0, kFab);
    std::vector<core::DesignPoint> points;
    for (const auto &entry : entries)
        points.push_back(entry.design_point);
    const dse::Scoreboard scoreboard(points);
    EXPECT_EQ(scoreboard.winner(core::Metric::EDP), "2048 MACs");
    EXPECT_EQ(scoreboard.winner(core::Metric::CDP), "1024 MACs");
    EXPECT_EQ(scoreboard.winner(core::Metric::CE2P), "512 MACs");
    EXPECT_EQ(scoreboard.winner(core::Metric::CEP), "256 MACs");
    EXPECT_EQ(scoreboard.winner(core::Metric::C2EP), "128 MACs");
}

TEST(Figure13, QosStudyMatchesPaper)
{
    // 30 FPS QoS: the carbon-minimal design is 256 MACs; the
    // performance and energy optima incur ~3.3x and ~1.4x higher
    // embodied footprints.
    const NpuModel model;
    const QosStudy study = qosStudy(model, 16.0, kFab);
    ASSERT_TRUE(study.carbon_optimal.has_value());
    EXPECT_EQ(study.carbon_optimal->evaluation.config.mac_count, 256);
    EXPECT_EQ(study.performance_optimal.evaluation.config.mac_count,
              2048);
    EXPECT_EQ(study.energy_optimal.evaluation.config.mac_count, 512);
    EXPECT_NEAR(study.performanceOverhead(), 3.3, 0.1);
    EXPECT_NEAR(study.energyOverhead(), 1.4, 0.1);
    // Over-provisioning: both optima far exceed the QoS target.
    EXPECT_GT(study.performance_optimal.evaluation.frames_per_second,
              5.0 * study.qos_fps);
    EXPECT_GT(study.energy_optimal.evaluation.frames_per_second,
              2.5 * study.qos_fps);
}

TEST(Figure13, InfeasibleQosHasNoCarbonOptimum)
{
    const NpuModel model;
    const QosStudy study = qosStudy(model, 16.0, kFab, 10'000.0);
    EXPECT_FALSE(study.carbon_optimal.has_value());
    EXPECT_EXIT(study.performanceOverhead(),
                ::testing::ExitedWithCode(1), "");
}

TEST(Figure13, JevonsParadoxUnderAreaBudgets)
{
    // Right panel: under 1 and 2 mm2 budgets, moving 28 nm -> 16 nm
    // *increases* the embodied footprint (more MACs are packed and the
    // newer node is dirtier per area) -- Jevons paradox.
    const NpuModel model;
    for (double budget : {1.0, 2.0}) {
        const BudgetEntry at16 = budgetStudy(model, 16.0, budget, kFab);
        const BudgetEntry at28 = budgetStudy(model, 28.0, budget, kFab);
        ASSERT_TRUE(at16.best.has_value());
        ASSERT_TRUE(at28.best.has_value());
        // The newer node packs at least as many MACs...
        EXPECT_GE(at16.best->evaluation.config.mac_count,
                  at28.best->evaluation.config.mac_count);
        // ...and ends up with a higher embodied footprint.
        const double ratio = util::asGrams(at16.best->embodied) /
                             util::asGrams(at28.best->embodied);
        EXPECT_GT(ratio, 1.1) << budget;
        EXPECT_LT(ratio, 1.6) << budget;
    }
}

TEST(Figure13, TinyBudgetIsInfeasible)
{
    const NpuModel model;
    const BudgetEntry entry = budgetStudy(model, 16.0, 0.1, kFab);
    EXPECT_FALSE(entry.best.has_value());
}

TEST(NpuModel, EmbodiedMatchesAreaTimesCpa)
{
    const NpuModel model;
    const NpuConfig config{512, 16.0};
    EXPECT_NEAR(util::asGrams(model.embodied(config, kFab)),
                util::asGrams(core::logicEmbodied(model.area(config),
                                                  16.0, kFab)),
                1e-9);
}

/** Property: energy and latency are positive and finite at all nodes. */
class NpuNodes : public ::testing::TestWithParam<double> {};

TEST_P(NpuNodes, EvaluationsAreWellFormed)
{
    const NpuModel model;
    const Network &network = referenceVisionNetwork();
    for (int macs : macSweep()) {
        const NpuEvaluation eval =
            model.evaluate(network, {macs, GetParam()});
        EXPECT_GT(eval.frames_per_second, 0.0);
        EXPECT_GT(util::asJoules(eval.energy_per_frame), 0.0);
        EXPECT_GT(eval.utilization, 0.0);
        EXPECT_LE(eval.utilization, 1.0);
        EXPECT_EQ(eval.total_macs, network.totalMacs());
    }
}

INSTANTIATE_TEST_SUITE_P(Nodes, NpuNodes,
                         ::testing::Values(7.0, 10.0, 16.0, 22.0, 28.0));

} // namespace
} // namespace act::accel
