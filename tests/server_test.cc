/** @file Tests for the data-center server carbon accounting module. */

#include <gtest/gtest.h>

#include "server/datacenter.h"

namespace act::server {
namespace {

const core::FabParams kFab;

TEST(ServerPlatform, DellR740EmbodiedFromBom)
{
    const ServerPlatform platform = dellR740Platform(kFab);
    // The R740 BOM (2x Xeon + 384 GB DDR4 + 31 TB NAND) lands in the
    // hundreds of kilograms.
    EXPECT_GT(util::asKilograms(platform.embodied), 250.0);
    EXPECT_LT(util::asKilograms(platform.embodied), 500.0);
    EXPECT_GT(util::asWatts(platform.peak_power),
              util::asWatts(platform.idle_power));
}

TEST(ServerPlatform, PowerModelInterpolatesLinearly)
{
    const ServerPlatform platform = dellR740Platform(kFab);
    EXPECT_DOUBLE_EQ(
        util::asWatts(powerAtUtilization(platform, 0.0)), 120.0);
    EXPECT_DOUBLE_EQ(
        util::asWatts(powerAtUtilization(platform, 1.0)), 500.0);
    EXPECT_DOUBLE_EQ(
        util::asWatts(powerAtUtilization(platform, 0.5)), 310.0);
    EXPECT_EXIT(powerAtUtilization(platform, 1.5),
                ::testing::ExitedWithCode(1), "");
}

TEST(Datacenter, AnnualFootprintCombinesBothTerms)
{
    const ServerPlatform platform = dellR740Platform(kFab);
    DatacenterParams dc;
    const auto footprint = annualFootprint(platform, dc);

    // Operational: 310 W * PUE 1.2 * 1 year at 300 g/kWh.
    const double expected_op_kg =
        0.310 * 1.2 * 24.0 * 365.0 * 300.0 / 1000.0;
    EXPECT_NEAR(util::asKilograms(footprint.operational),
                expected_op_kg, 0.5);
    // Embodied: one quarter of the platform footprint per year of a
    // 4-year life.
    EXPECT_NEAR(util::asGrams(footprint.embodied_allocated),
                util::asGrams(platform.embodied) / 4.0, 1e-6);
}

TEST(Datacenter, PueScalesOnlyOperational)
{
    const ServerPlatform platform = dellR740Platform(kFab);
    DatacenterParams lean;
    lean.pue = 1.1;
    DatacenterParams heavy;
    heavy.pue = 2.0;
    const auto a = annualFootprint(platform, lean);
    const auto b = annualFootprint(platform, heavy);
    EXPECT_NEAR(util::asGrams(b.operational) /
                    util::asGrams(a.operational),
                2.0 / 1.1, 1e-9);
    EXPECT_DOUBLE_EQ(util::asGrams(a.embodied_allocated),
                     util::asGrams(b.embodied_allocated));
}

TEST(Datacenter, JobFootprintScalesWithDuration)
{
    const ServerPlatform platform = dellR740Platform(kFab);
    DatacenterParams dc;
    const auto one_hour = jobFootprint(platform, dc, util::hours(1.0));
    const auto two_hours = jobFootprint(platform, dc, util::hours(2.0));
    EXPECT_NEAR(util::asGrams(two_hours.total()),
                2.0 * util::asGrams(one_hour.total()), 1e-6);
}

TEST(Datacenter, GreenGridRaisesEmbodiedShare)
{
    const ServerPlatform platform = dellR740Platform(kFab);
    DatacenterParams brown;
    brown.grid = core::OperationalParams::forSource(
        data::EnergySource::Coal);
    DatacenterParams green;
    green.grid = core::OperationalParams::forSource(
        data::EnergySource::Wind);
    const auto dirty = annualFootprint(platform, brown);
    const auto clean = annualFootprint(platform, green);
    EXPECT_LT(dirty.embodiedShare(), clean.embodiedShare());
    EXPECT_GT(clean.embodiedShare(), 0.5);
}

TEST(Datacenter, DesignPointForCdp)
{
    const ServerPlatform platform = dellR740Platform(kFab);
    DatacenterParams dc;
    const auto point = serverDesignPoint(platform, dc);
    EXPECT_DOUBLE_EQ(util::asGrams(point.embodied),
                     util::asGrams(platform.embodied));
    EXPECT_GT(util::asKilowattHours(point.energy), 0.0);
    EXPECT_DOUBLE_EQ(util::asSeconds(point.delay), 1.0);
}

TEST(Refresh, SweepFindsInteriorOptimum)
{
    const ServerPlatform platform = dellR740Platform(kFab);
    DatacenterParams dc;
    const auto sweep = refreshSweep(platform, dc);
    ASSERT_EQ(sweep.size(), 12u);
    const std::size_t best = core::optimalReplacementIndex(sweep);
    // With slow server efficiency growth, refreshing yearly is clearly
    // wasteful and holding forever is not optimal either.
    EXPECT_GE(sweep[best].lifetime_years, 2.0);
    EXPECT_GT(util::asGrams(sweep.front().total()),
              util::asGrams(sweep[best].total()));
}

TEST(Refresh, GreenGridExtendsOptimalLifetime)
{
    // A renewable grid shrinks the operational penalty of aging, so
    // servers should be kept at least as long.
    const ServerPlatform platform = dellR740Platform(kFab);
    DatacenterParams brown;
    brown.grid = core::OperationalParams::forSource(
        data::EnergySource::Coal);
    DatacenterParams green;
    green.grid = core::OperationalParams::forSource(
        data::EnergySource::Wind);
    const auto dirty = refreshSweep(platform, brown);
    const auto clean = refreshSweep(platform, green);
    EXPECT_GE(clean[core::optimalReplacementIndex(clean)].lifetime_years,
              dirty[core::optimalReplacementIndex(dirty)]
                  .lifetime_years);
}

TEST(Datacenter, ParameterValidation)
{
    const ServerPlatform platform = dellR740Platform(kFab);
    DatacenterParams dc;
    dc.pue = 0.9;
    EXPECT_EXIT(annualFootprint(platform, dc),
                ::testing::ExitedWithCode(1), "");
    dc = DatacenterParams{};
    dc.utilization = 1.5;
    EXPECT_EXIT(annualFootprint(platform, dc),
                ::testing::ExitedWithCode(1), "");
    dc = DatacenterParams{};
    dc.lifetime = util::years(0.0);
    EXPECT_EXIT(annualFootprint(platform, dc),
                ::testing::ExitedWithCode(1), "");
}

TEST(Replacement, GenericModelValidation)
{
    core::ReplacementParams params;
    params.embodied_per_unit = util::kilograms(100.0);
    params.first_year_energy = util::kilowattHours(1000.0);
    EXPECT_EXIT(core::evaluateReplacement(params, 0.0),
                ::testing::ExitedWithCode(1), "");
    params.annual_efficiency_improvement = 1.0;
    EXPECT_EXIT(core::evaluateReplacement(params, 3.0),
                ::testing::ExitedWithCode(1), "");
    EXPECT_EXIT(core::replacementSweep(params, 0),
                ::testing::ExitedWithCode(1), "");
    EXPECT_EXIT(core::optimalReplacementIndex({}),
                ::testing::ExitedWithCode(1), "");
}

} // namespace
} // namespace act::server
