/** @file Tests for ASCII chart rendering and the experiment reporter. */

#include <gtest/gtest.h>

#include "report/experiment.h"
#include "util/chart.h"

namespace act {
namespace {

TEST(BarChart, RendersLabelsValuesAndNotes)
{
    const std::vector<util::BarEntry> entries = {
        {"alpha", 10.0, ""},
        {"beta", 5.0, "[vendor]"},
    };
    const std::string out =
        util::renderBarChart("Test chart", entries, 20);
    EXPECT_NE(out.find("Test chart"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("[vendor]"), std::string::npos);
    // The max entry fills the full width, the half entry half of it.
    EXPECT_NE(out.find(std::string(20, '#')), std::string::npos);
    EXPECT_NE(out.find("|" + std::string(10, '#') + " "),
              std::string::npos);
}

TEST(BarChart, EmptyAndZeroInputsAreSafe)
{
    EXPECT_EQ(util::renderBarChart("empty", {}), "empty\n");
    const std::vector<util::BarEntry> zeros = {{"z", 0.0, ""}};
    const std::string out = util::renderBarChart("zeros", zeros, 20);
    EXPECT_EQ(out.find('#'), std::string::npos);
}

TEST(StackedBarChart, SegmentsScaleWithValues)
{
    const std::vector<util::StackedBarEntry> entries = {
        {"a", 3.0, 1.0},
        {"b", 1.0, 1.0},
    };
    const std::string out = util::renderStackedBarChart(
        "Stack", "first", "second", entries, 40);
    EXPECT_NE(out.find("#=first"), std::string::npos);
    EXPECT_NE(out.find(".=second"), std::string::npos);
    // Entry "a" totals 4.0 and spans the full width: 30 '#' + 10 '.'.
    EXPECT_NE(out.find(std::string(30, '#') + std::string(10, '.')),
              std::string::npos);
    // Totals and the split are printed.
    EXPECT_NE(out.find("4.000 (3.000 + 1.000)"), std::string::npos);
}

TEST(ReportOptions, ParsesFlags)
{
    const char *argv_csv[] = {"prog", "--csv"};
    const auto csv =
        report::parseOptions(2, const_cast<char **>(argv_csv));
    EXPECT_TRUE(csv.csv);
    EXPECT_FALSE(csv.ablation);

    const char *argv_both[] = {"prog", "--ablation", "--csv"};
    const auto both =
        report::parseOptions(3, const_cast<char **>(argv_both));
    EXPECT_TRUE(both.csv);
    EXPECT_TRUE(both.ablation);

    const char *argv_none[] = {"prog"};
    const auto none =
        report::parseOptions(1, const_cast<char **>(argv_none));
    EXPECT_FALSE(none.csv);
    EXPECT_FALSE(none.ablation);
}

TEST(ReportOptions, UnknownFlagIsFatal)
{
    const char *argv_bad[] = {"prog", "--frobnicate"};
    EXPECT_EXIT(report::parseOptions(2, const_cast<char **>(argv_bad)),
                ::testing::ExitedWithCode(1), "");
}

TEST(ReportOptions, HelpExitsCleanly)
{
    const char *argv_help[] = {"prog", "--help"};
    EXPECT_EXIT(report::parseOptions(2, const_cast<char **>(argv_help)),
                ::testing::ExitedWithCode(0), "");
}

TEST(Experiment, ClaimAndNoteFormat)
{
    ::testing::internal::CaptureStdout();
    {
        report::Experiment experiment("Figure 0", "format check");
        experiment.section("part");
        experiment.claim("quantity", "1.0", "1.1");
        experiment.claim("numeric", 2.0, 2.5, 2);
        experiment.note("caveat");
    }
    const std::string out =
        ::testing::internal::GetCapturedStdout();
    EXPECT_NE(out.find("=== Figure 0: format check ==="),
              std::string::npos);
    EXPECT_NE(out.find("--- part ---"), std::string::npos);
    EXPECT_NE(out.find("[claim] quantity: paper=1.0 measured=1.1"),
              std::string::npos);
    EXPECT_NE(out.find("[claim] numeric: paper=2.0 measured=2.5"),
              std::string::npos);
    EXPECT_NE(out.find("[note] caveat"), std::string::npos);
}

} // namespace
} // namespace act
