/**
 * @file
 * Tests for the defect-density yield models and the chiplet
 * partitioning analysis (the Reuse-tenet "chiplet design" extension).
 */

#include <gtest/gtest.h>

#include "pkg/chiplet.h"
#include "core/embodied.h"
#include "core/yield.h"

namespace act::core {
namespace {

using util::squareMillimeters;

TEST(YieldModels, KnownValues)
{
    DefectParams defects;
    defects.defect_density_per_cm2 = 0.1;

    // Poisson at 1 cm2, D0 = 0.1: exp(-0.1).
    defects.model = YieldModel::Poisson;
    EXPECT_NEAR(dieYield(util::squareCentimeters(1.0), defects),
                std::exp(-0.1), 1e-12);

    // Negative binomial, alpha = 3: (1 + 0.1/3)^-3.
    defects.model = YieldModel::NegativeBinomial;
    defects.clustering_alpha = 3.0;
    EXPECT_NEAR(dieYield(util::squareCentimeters(1.0), defects),
                std::pow(1.0 + 0.1 / 3.0, -3.0), 1e-12);

    // Murphy: ((1 - e^-l)/l)^2.
    defects.model = YieldModel::Murphy;
    const double l = 0.1;
    EXPECT_NEAR(dieYield(util::squareCentimeters(1.0), defects),
                std::pow((1.0 - std::exp(-l)) / l, 2.0), 1e-12);
}

TEST(YieldModels, OrderingAtLargeDies)
{
    // Clustering (negative binomial) is more forgiving than Poisson
    // for large dies; Murphy sits between.
    DefectParams poisson{0.2, 3.0, YieldModel::Poisson};
    DefectParams murphy{0.2, 3.0, YieldModel::Murphy};
    DefectParams nb{0.2, 3.0, YieldModel::NegativeBinomial};
    const util::Area big = squareMillimeters(600.0);
    EXPECT_LT(dieYield(big, poisson), dieYield(big, murphy));
    EXPECT_LT(dieYield(big, murphy), dieYield(big, nb));
}

TEST(YieldModels, InvalidInputsAreFatal)
{
    DefectParams defects;
    EXPECT_EXIT(dieYield(squareMillimeters(0.0), defects),
                ::testing::ExitedWithCode(1), "");
    defects.defect_density_per_cm2 = 0.0;
    EXPECT_EXIT(dieYield(squareMillimeters(100.0), defects),
                ::testing::ExitedWithCode(1), "");
    defects = DefectParams{};
    defects.clustering_alpha = 0.0;
    EXPECT_EXIT(dieYield(squareMillimeters(100.0), defects),
                ::testing::ExitedWithCode(1), "");
}

TEST(YieldModels, MurphySmallLambdaLimitIsOne)
{
    // ((1 - exp(-x))/x)^2 cancels catastrophically as x -> 0; the
    // expm1 form must approach Y = 1 smoothly from below instead.
    DefectParams defects;
    defects.model = YieldModel::Murphy;
    defects.defect_density_per_cm2 = 1e-12;
    double prev = 0.0;
    for (double cm2 : {1.0, 1e-3, 1e-6, 1e-9, 1e-12}) {
        const double y =
            dieYield(util::squareCentimeters(cm2), defects);
        EXPECT_GT(y, 0.999) << "lambda = " << cm2 * 1e-12;
        EXPECT_LE(y, 1.0);
        EXPECT_GE(y, prev);
        prev = y;
    }
    // Deep in the limit the yield is exactly 1: expm1(-x) == -x.
    defects.defect_density_per_cm2 = 1e-300;
    EXPECT_EQ(dieYield(util::squareCentimeters(1e-3), defects), 1.0);
}

TEST(YieldModels, MurphyMatchesNaiveFormAtModerateLambda)
{
    // Where the naive form is accurate the expm1 form must agree.
    DefectParams defects;
    defects.model = YieldModel::Murphy;
    for (double lambda : {0.05, 0.5, 2.0, 8.0}) {
        defects.defect_density_per_cm2 = lambda;
        const double naive =
            std::pow((1.0 - std::exp(-lambda)) / lambda, 2.0);
        EXPECT_NEAR(dieYield(util::squareCentimeters(1.0), defects),
                    naive, 1e-12 * naive + 1e-300);
    }
}

TEST(YieldModels, EffectiveAreaExceedsRawArea)
{
    const DefectParams defects;
    const util::Area die = squareMillimeters(200.0);
    EXPECT_GT(util::asSquareMillimeters(
                  effectiveAreaPerGoodDie(die, defects)),
              200.0);
}

/** Property: yield decreases monotonically with die area. */
class YieldMonotonic : public ::testing::TestWithParam<YieldModel> {};

TEST_P(YieldMonotonic, LargerDiesYieldWorse)
{
    DefectParams defects;
    defects.model = GetParam();
    double prev = 1.0;
    for (double mm2 = 25.0; mm2 <= 900.0; mm2 += 25.0) {
        const double y = dieYield(squareMillimeters(mm2), defects);
        EXPECT_LT(y, prev);
        EXPECT_GT(y, 0.0);
        prev = y;
    }
}

INSTANTIATE_TEST_SUITE_P(AllModels, YieldMonotonic,
                         ::testing::Values(YieldModel::Poisson,
                                           YieldModel::Murphy,
                                           YieldModel::NegativeBinomial));

TEST(Chiplets, SmallDiesStayMonolithic)
{
    const core::FabParams fab;
    pkg::ChipletParams params;
    params.defects.defect_density_per_cm2 = 0.15;
    const auto sweep =
        pkg::chipletSweep(squareMillimeters(100.0), 7.0, fab, params);
    EXPECT_EQ(sweep[pkg::optimalChipletCount(sweep)].num_chiplets, 1);
}

TEST(Chiplets, LargeDiesPreferPartitioning)
{
    const core::FabParams fab;
    pkg::ChipletParams params;
    params.defects.defect_density_per_cm2 = 0.15;
    const auto sweep =
        pkg::chipletSweep(squareMillimeters(800.0), 7.0, fab, params);
    EXPECT_GT(sweep[pkg::optimalChipletCount(sweep)].num_chiplets, 2);
    // Monolithic 800 mm2 wastes a lot of yielded silicon.
    EXPECT_LT(util::asGrams(sweep[pkg::optimalChipletCount(sweep)].total()),
              0.6 * util::asGrams(sweep[0].total()));
}

TEST(Chiplets, YieldImprovesWithPartitioning)
{
    const core::FabParams fab;
    const pkg::ChipletParams params;
    const auto sweep =
        pkg::chipletSweep(squareMillimeters(600.0), 7.0, fab, params);
    for (std::size_t i = 1; i < sweep.size(); ++i)
        EXPECT_GT(sweep[i].chiplet_yield, sweep[i - 1].chiplet_yield);
}

TEST(Chiplets, MonolithicHasNoInterposerOrInterfaceOverhead)
{
    const core::FabParams fab;
    const pkg::ChipletParams params;
    const auto point = pkg::evaluateChiplets(squareMillimeters(300.0), 1,
                                        7.0, fab, params);
    EXPECT_DOUBLE_EQ(util::asGrams(point.interposer_embodied), 0.0);
    EXPECT_NEAR(util::asSquareMillimeters(point.chiplet_area), 300.0,
                1e-9);
    EXPECT_DOUBLE_EQ(util::asGrams(point.assembly_embodied),
                     util::asGrams(kPackagingFootprint));
}

TEST(Chiplets, CostModelComponentsAddUp)
{
    const core::FabParams fab;
    const pkg::ChipletParams params;
    const auto point = pkg::evaluateChiplets(squareMillimeters(600.0), 4,
                                        7.0, fab, params);
    EXPECT_NEAR(util::asGrams(point.total()),
                util::asGrams(point.silicon_embodied) +
                    util::asGrams(point.interposer_embodied) +
                    util::asGrams(point.assembly_embodied),
                1e-9);
    // Four chiplets: one package + 3 * 50% assembly increments.
    EXPECT_NEAR(util::asGrams(point.assembly_embodied),
                150.0 * (1.0 + 0.5 * 3.0), 1e-9);
}

TEST(Chiplets, PerfectYieldMakesMonolithicOptimal)
{
    // With essentially no defects there is nothing for chiplets to
    // recover, so overheads make partitioning strictly worse.
    const core::FabParams fab;
    pkg::ChipletParams params;
    params.defects.defect_density_per_cm2 = 1e-6;
    const auto sweep =
        pkg::chipletSweep(squareMillimeters(800.0), 7.0, fab, params);
    EXPECT_EQ(sweep[pkg::optimalChipletCount(sweep)].num_chiplets, 1);
}

TEST(Chiplets, InvalidArgumentsAreFatal)
{
    const core::FabParams fab;
    const pkg::ChipletParams params;
    EXPECT_EXIT(pkg::evaluateChiplets(squareMillimeters(100.0), 0, 7.0, fab,
                                 params),
                ::testing::ExitedWithCode(1), "");
    EXPECT_EXIT(pkg::evaluateChiplets(squareMillimeters(0.0), 2, 7.0, fab,
                                 params),
                ::testing::ExitedWithCode(1), "");
    EXPECT_EXIT(pkg::optimalChipletCount({}), ::testing::ExitedWithCode(1),
                "");
}

} // namespace
} // namespace act::core
