/** @file Tests for the deterministic parallel execution layer. */

#include <atomic>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dse/montecarlo.h"
#include "util/parallel.h"
#include "util/random.h"

namespace act::util {
namespace {

/** Thread counts the determinism contract is exercised at. */
std::vector<std::size_t>
contractThreadCounts()
{
    const std::size_t hardware = std::max<std::size_t>(
        1, std::thread::hardware_concurrency());
    return {1, 2, 7, hardware};
}

/** Restore automatic thread-count resolution after each test. */
class ParallelTest : public ::testing::Test
{
  protected:
    void TearDown() override { setThreadCount(0); }
};

TEST_F(ParallelTest, ThreadCountOverrideRoundTrips)
{
    setThreadCount(3);
    EXPECT_EQ(threadCount(), 3u);
    setThreadCount(0);
    EXPECT_GE(threadCount(), 1u);
}

TEST_F(ParallelTest, StaticChunksTileTheRangeExactly)
{
    const auto chunks = staticChunks(3, 25, 5);
    ASSERT_EQ(chunks.size(), 5u);
    std::size_t expected = 3;
    for (const IndexRange &range : chunks) {
        EXPECT_EQ(range.begin, expected);
        expected = range.end;
    }
    EXPECT_EQ(expected, 25u);
    EXPECT_EQ(chunks.back().size(), 2u);

    EXPECT_TRUE(staticChunks(4, 4, 8).empty());
}

TEST_F(ParallelTest, AutomaticGrainIsThreadCountIndependent)
{
    setThreadCount(1);
    const auto serial = staticChunks(0, 1000, 0);
    setThreadCount(7);
    const auto parallel = staticChunks(0, 1000, 0);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].begin, parallel[i].begin);
        EXPECT_EQ(serial[i].end, parallel[i].end);
    }
}

TEST_F(ParallelTest, ParallelForVisitsEveryIndexExactlyOnce)
{
    for (const std::size_t threads : contractThreadCounts()) {
        setThreadCount(threads);
        std::vector<std::atomic<int>> visits(1000);
        parallelFor(0, visits.size(), 16, [&](std::size_t i) {
            visits[i].fetch_add(1);
        });
        for (const auto &count : visits)
            EXPECT_EQ(count.load(), 1);
    }
}

TEST_F(ParallelTest, MapReduceIsBitIdenticalAcrossThreadCounts)
{
    // A floating-point sum whose value depends on evaluation order:
    // only a fixed chunk layout plus ordered reduction makes this
    // reproducible across thread counts.
    const auto sweep = [](std::size_t) {
        return parallelMapReduce<double>(
            0, 100'000, 512,
            [](IndexRange range) {
                double sum = 0.0;
                for (std::size_t i = range.begin; i < range.end; ++i)
                    sum += std::sin(static_cast<double>(i)) * 1e-3 +
                           1.0 / static_cast<double>(i + 1);
                return sum;
            },
            [](double acc, double part) { return acc + part; });
    };

    setThreadCount(1);
    const double reference = sweep(0);
    for (const std::size_t threads : contractThreadCounts()) {
        setThreadCount(threads);
        for (int repeat = 0; repeat < 3; ++repeat) {
            const double value = sweep(threads);
            EXPECT_EQ(value, reference)
                << "thread count " << threads << " repeat " << repeat;
        }
    }
}

TEST_F(ParallelTest, NestedParallelSectionsFallBackToSerial)
{
    setThreadCount(4);
    std::atomic<int> total{0};
    parallelFor(0, 8, 1, [&](std::size_t) {
        // Inner section runs serially on the worker; must not hang.
        parallelFor(0, 10, 1,
                    [&](std::size_t) { total.fetch_add(1); });
    });
    EXPECT_EQ(total.load(), 80);
}

TEST_F(ParallelTest, DerivedSeedsAreStableAndDistinct)
{
    EXPECT_EQ(deriveSeed(42, 0), deriveSeed(42, 0));
    EXPECT_NE(deriveSeed(42, 0), deriveSeed(42, 1));
    EXPECT_NE(deriveSeed(42, 0), deriveSeed(43, 0));

    // Streams should look independent: means of adjacent streams stay
    // near 1/2 (a weak but fast independence smoke test).
    for (std::uint64_t stream = 0; stream < 4; ++stream) {
        Xorshift64Star rng(deriveSeed(7, stream));
        double sum = 0.0;
        for (int draw = 0; draw < 4096; ++draw)
            sum += rng.nextUnit();
        EXPECT_NEAR(sum / 4096.0, 0.5, 0.03);
    }
}

TEST_F(ParallelTest, MonteCarloIsIdenticalForAnyThreadCount)
{
    const std::vector<dse::UncertainParameter> parameters = {
        {"a", dse::Distribution::Uniform, 0.5, 0.0, 1.0},
        {"b", dse::Distribution::Triangular, 0.6, 0.0, 1.0},
    };
    const auto model = [](const std::vector<double> &v) {
        return v[0] * v[1] + v[0];
    };

    setThreadCount(1);
    const auto reference = dse::monteCarlo(parameters, model, 20'000, 9);
    for (const std::size_t threads : contractThreadCounts()) {
        setThreadCount(threads);
        const auto result = dse::monteCarlo(parameters, model, 20'000, 9);
        EXPECT_EQ(result.mean, reference.mean);
        EXPECT_EQ(result.stddev, reference.stddev);
        EXPECT_EQ(result.p5, reference.p5);
        EXPECT_EQ(result.p50, reference.p50);
        EXPECT_EQ(result.p95, reference.p95);
        EXPECT_EQ(result.min, reference.min);
        EXPECT_EQ(result.max, reference.max);
    }
}

TEST_F(ParallelTest, MonteCarloChunkedStreamsMatchAnalyticMoments)
{
    // The chunked per-stream sampler is a (documented) behavior change
    // from the old single sequential stream; the sampled distribution
    // must still match analytic moments within tight tolerance.
    const std::vector<dse::UncertainParameter> parameters = {
        {"a", dse::Distribution::Uniform, 0.5, 0.0, 1.0},
        {"b", dse::Distribution::Uniform, 0.5, 0.0, 1.0},
    };
    setThreadCount(4);
    const auto result = dse::monteCarlo(
        parameters,
        [](const std::vector<double> &v) { return v[0] + v[1]; },
        50'000);
    EXPECT_NEAR(result.mean, 1.0, 0.01);
    EXPECT_NEAR(result.stddev, std::sqrt(1.0 / 6.0), 0.01);
    EXPECT_NEAR(result.p50, 1.0, 0.02);
}

} // namespace
} // namespace act::util
