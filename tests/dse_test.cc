/** @file Tests for the design-space exploration primitives. */

#include <cstdint>
#include <gtest/gtest.h>

#include "dse/optimize.h"
#include "dse/pareto.h"
#include "dse/scoreboard.h"

namespace act::dse {
namespace {

TEST(Pareto, Dominance)
{
    const Point2D a{"a", 1.0, 1.0};
    const Point2D b{"b", 2.0, 2.0};
    const Point2D c{"c", 1.0, 2.0};
    EXPECT_TRUE(dominates(a, b));
    EXPECT_TRUE(dominates(a, c));
    EXPECT_FALSE(dominates(b, a));
    EXPECT_FALSE(dominates(a, a));  // equal points do not dominate
    EXPECT_FALSE(dominates(c, b) && dominates(b, c));
}

TEST(Pareto, SimpleFrontier)
{
    const std::vector<Point2D> points = {
        {"fast-dirty", 1.0, 10.0},
        {"balanced", 3.0, 3.0},
        {"slow-clean", 10.0, 1.0},
        {"dominated", 5.0, 5.0},
    };
    const auto frontier = paretoFrontier(points);
    ASSERT_EQ(frontier.size(), 3u);
    EXPECT_EQ(points[frontier[0]].name, "fast-dirty");
    EXPECT_EQ(points[frontier[1]].name, "balanced");
    EXPECT_EQ(points[frontier[2]].name, "slow-clean");
}

TEST(Pareto, DuplicatesAllSurvive)
{
    const std::vector<Point2D> points = {{"a", 1.0, 1.0},
                                         {"b", 1.0, 1.0}};
    EXPECT_EQ(paretoFrontier(points).size(), 2u);
}

TEST(Pareto, ThreeObjective)
{
    const std::vector<Point3D> points = {
        {"a", 1.0, 5.0, 5.0},
        {"b", 5.0, 1.0, 5.0},
        {"c", 5.0, 5.0, 1.0},
        {"dominated", 6.0, 6.0, 6.0},
    };
    EXPECT_EQ(paretoFrontier(points).size(), 3u);
}

TEST(Pareto, PropertyNoFrontierPointIsDominated)
{
    // Deterministic pseudo-random cloud.
    std::uint64_t state = 12345;
    const auto next = [&state]() {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        return static_cast<double>((state >> 33) % 1000) / 100.0;
    };
    std::vector<Point2D> points;
    for (int i = 0; i < 200; ++i)
        points.push_back({"p" + std::to_string(i), next(), next()});

    const auto frontier = paretoFrontier(points);
    ASSERT_FALSE(frontier.empty());
    for (std::size_t f : frontier) {
        for (const auto &other : points)
            EXPECT_FALSE(dominates(other, points[f]));
    }
    // And every non-frontier point is dominated by someone.
    std::vector<bool> on_frontier(points.size(), false);
    for (std::size_t f : frontier)
        on_frontier[f] = true;
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (on_frontier[i])
            continue;
        bool dominated = false;
        for (const auto &other : points)
            dominated = dominated || dominates(other, points[i]);
        EXPECT_TRUE(dominated) << points[i].name;
    }
}

TEST(Optimize, ConstrainedSelection)
{
    const std::vector<double> objective = {5.0, 3.0, 8.0, 1.0};
    const std::vector<double> fps = {50.0, 28.0, 60.0, 10.0};

    const auto qos = minimizeSubjectToAtLeast(objective, fps, 30.0);
    ASSERT_TRUE(qos.has_value());
    EXPECT_EQ(*qos, 0u);  // index 3 is cheapest but misses QoS

    const auto budget = minimizeSubjectToAtMost(objective, fps, 30.0);
    ASSERT_TRUE(budget.has_value());
    EXPECT_EQ(*budget, 3u);

    EXPECT_FALSE(
        minimizeSubjectToAtLeast(objective, fps, 100.0).has_value());
}

TEST(Optimize, SizeMismatchIsFatal)
{
    const std::vector<double> a = {1.0};
    const std::vector<double> b = {1.0, 2.0};
    EXPECT_EXIT(minimizeSubjectToAtLeast(a, b, 0.0),
                ::testing::ExitedWithCode(1), "");
}

TEST(Optimize, Ranges)
{
    const auto linear = linearRange(0.0, 1.0, 5);
    ASSERT_EQ(linear.size(), 5u);
    EXPECT_DOUBLE_EQ(linear.front(), 0.0);
    EXPECT_DOUBLE_EQ(linear.back(), 1.0);
    EXPECT_DOUBLE_EQ(linear[2], 0.5);

    const auto geometric = geometricRange(1.0, 16.0, 5);
    ASSERT_EQ(geometric.size(), 5u);
    EXPECT_NEAR(geometric[1], 2.0, 1e-9);
    EXPECT_NEAR(geometric.back(), 16.0, 1e-9);

    const auto powers = powersOfTwo(64, 2048);
    EXPECT_EQ(powers, (std::vector<int>{64, 128, 256, 512, 1024, 2048}));
}

TEST(Optimize, RangeErrors)
{
    EXPECT_EXIT(linearRange(0.0, 1.0, 1), ::testing::ExitedWithCode(1),
                "");
    EXPECT_EXIT(geometricRange(0.0, 1.0, 4),
                ::testing::ExitedWithCode(1), "");
    EXPECT_EXIT(powersOfTwo(3, 8), ::testing::ExitedWithCode(1), "");
    EXPECT_EXIT(powersOfTwo(8, 4), ::testing::ExitedWithCode(1), "");
}

TEST(Scoreboard, ColumnsAndWinners)
{
    std::vector<core::DesignPoint> designs(2);
    designs[0].name = "lean";
    designs[0].embodied = util::grams(1.0);
    designs[0].energy = util::kilowattHours(2.0);
    designs[0].delay = util::seconds(4.0);
    designs[0].area = util::squareCentimeters(1.0);
    designs[1].name = "fast";
    designs[1].embodied = util::grams(4.0);
    designs[1].energy = util::kilowattHours(1.0);
    designs[1].delay = util::seconds(1.0);
    designs[1].area = util::squareCentimeters(2.0);

    const Scoreboard scoreboard(designs);
    EXPECT_EQ(scoreboard.columns().size(), 6u);
    EXPECT_EQ(scoreboard.winner(core::Metric::EDP), "fast");
    EXPECT_EQ(scoreboard.winner(core::Metric::C2EP), "lean");
    const auto &column = scoreboard.column(core::Metric::CEP);
    EXPECT_DOUBLE_EQ(column.normalized[0], 1.0);
    EXPECT_DOUBLE_EQ(column.normalized[1], 2.0);
    EXPECT_EQ(column.values.size(), 2u);
}

TEST(Scoreboard, EmptyOrBadBaselineIsFatal)
{
    EXPECT_EXIT(Scoreboard({}), ::testing::ExitedWithCode(1), "");
    std::vector<core::DesignPoint> one(1);
    one[0].embodied = util::grams(1.0);
    one[0].energy = util::kilowattHours(1.0);
    one[0].delay = util::seconds(1.0);
    one[0].area = util::squareCentimeters(1.0);
    EXPECT_EXIT(Scoreboard(one, 5), ::testing::ExitedWithCode(1), "");
}

} // namespace
} // namespace act::dse
