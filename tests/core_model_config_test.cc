/** @file Tests for scenario configuration (de)serialization. */

#include <fstream>

#include <gtest/gtest.h>

#include "core/model_config.h"

namespace act::core {
namespace {

TEST(ModelConfig, DefaultsRoundTrip)
{
    const Scenario scenario;
    const Scenario loaded = scenarioFromJson(toJson(scenario));
    EXPECT_DOUBLE_EQ(loaded.fab.ci_fab.value(),
                     scenario.fab.ci_fab.value());
    EXPECT_DOUBLE_EQ(loaded.fab.abatement, scenario.fab.abatement);
    EXPECT_DOUBLE_EQ(loaded.fab.yield, scenario.fab.yield);
    EXPECT_EQ(loaded.fab.lookup, scenario.fab.lookup);
    EXPECT_DOUBLE_EQ(loaded.operational.ci_use.value(),
                     scenario.operational.ci_use.value());
    EXPECT_DOUBLE_EQ(util::asYears(loaded.lifetime),
                     util::asYears(scenario.lifetime));
}

TEST(ModelConfig, CustomScenarioRoundTripsThroughText)
{
    Scenario scenario;
    scenario.fab.ci_fab = util::gramsPerKilowattHour(41.0);
    scenario.fab.abatement = 0.99;
    scenario.fab.yield = 0.6;
    scenario.fab.lookup = data::NodeLookup::NearestAnchor;
    scenario.operational.ci_use = util::gramsPerKilowattHour(820.0);
    scenario.operational.utilization_effectiveness = 1.4;
    scenario.lifetime = util::years(5.0);

    const std::string text = toJson(scenario).dump(2);
    const Scenario loaded =
        scenarioFromJson(config::JsonValue::parse(text));
    EXPECT_DOUBLE_EQ(loaded.fab.ci_fab.value(), 41.0);
    EXPECT_DOUBLE_EQ(loaded.fab.abatement, 0.99);
    EXPECT_DOUBLE_EQ(loaded.fab.yield, 0.6);
    EXPECT_EQ(loaded.fab.lookup, data::NodeLookup::NearestAnchor);
    EXPECT_DOUBLE_EQ(loaded.operational.ci_use.value(), 820.0);
    EXPECT_DOUBLE_EQ(loaded.operational.utilization_effectiveness, 1.4);
    EXPECT_DOUBLE_EQ(util::asYears(loaded.lifetime), 5.0);
}

TEST(ModelConfig, MissingKeysKeepDefaults)
{
    const Scenario loaded =
        scenarioFromJson(config::JsonValue::parse("{}"));
    const Scenario defaults;
    EXPECT_DOUBLE_EQ(loaded.fab.yield, defaults.fab.yield);
    EXPECT_DOUBLE_EQ(util::asYears(loaded.lifetime), 3.0);

    const Scenario partial = scenarioFromJson(
        config::JsonValue::parse(R"({"fab": {"yield": 0.5}})"));
    EXPECT_DOUBLE_EQ(partial.fab.yield, 0.5);
    EXPECT_DOUBLE_EQ(partial.fab.abatement, defaults.fab.abatement);
}

TEST(ModelConfig, BadLookupIsFatal)
{
    EXPECT_EXIT(fabParamsFromJson(config::JsonValue::parse(
                    R"({"lookup": "sideways"})")),
                ::testing::ExitedWithCode(1), "");
}

TEST(ModelConfig, NonPositiveLifetimeIsFatal)
{
    EXPECT_EXIT(scenarioFromJson(config::JsonValue::parse(
                    R"({"lifetime_years": 0})")),
                ::testing::ExitedWithCode(1), "");
}

TEST(ModelConfig, SaveAndLoadFile)
{
    const std::string path =
        ::testing::TempDir() + "/act_scenario_test.json";
    Scenario scenario;
    scenario.lifetime = util::years(4.0);
    saveScenario(path, scenario);
    const Scenario loaded = loadScenario(path);
    EXPECT_DOUBLE_EQ(util::asYears(loaded.lifetime), 4.0);
}

TEST(ModelConfig, LoadRejectsMalformedFile)
{
    const std::string path =
        ::testing::TempDir() + "/act_scenario_bad.json";
    {
        std::ofstream out(path);
        out << "{ not json";
    }
    EXPECT_EXIT(loadScenario(path), ::testing::ExitedWithCode(1), "");
}

} // namespace
} // namespace act::core
