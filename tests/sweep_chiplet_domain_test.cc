/**
 * @file
 * Tests for the "chiplet" sweep domain: the packaging-style x
 * die-count grid evaluated through compiled pkg::PackagePlans, and
 * the engine contract -- shards merge byte-identically to the
 * single-process run at any shard and thread count.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sweep/domains.h"
#include "sweep/engine.h"
#include "sweep/plan.h"
#include "util/parallel.h"

namespace act::sweep {
namespace {

/** The examples/configs/sweep_chiplet.json grid: 4 styles, 8 max
 *  chiplets, a 3-value fab-CI scenario column. */
SweepPlan
chipletPlan()
{
    const std::string text = R"({
        "domain": "chiplet",
        "seed": 42,
        "config": {
            "logic_area_mm2": 800,
            "node_nm": 7,
            "max_chiplets": 8,
            "defect_density_per_cm2": 0.15,
            "ci_fab_g_per_kwh": [30, 300, 700]
        }
    })";
    SweepPlan plan =
        sweepPlanFromJson(config::JsonValue::parse(text));
    findDomain(plan.domain).prepare(plan);
    return plan;
}

class SweepChipletDomainTest : public ::testing::Test
{
  protected:
    void TearDown() override { util::setThreadCount(0); }
};

TEST_F(SweepChipletDomainTest, DomainIsRegistered)
{
    bool found = false;
    for (const std::string_view name : domainNames())
        found = found || name == "chiplet";
    EXPECT_TRUE(found);
    EXPECT_FALSE(findDomain("chiplet").description.empty());
}

TEST_F(SweepChipletDomainTest, GridSpansStylesTimesDieCounts)
{
    // 1 monolithic point + 3 multi-die styles x counts 2..8.
    EXPECT_EQ(chipletPlan().items, 1u + 3u * 7u);
}

TEST_F(SweepChipletDomainTest,
       ShardedMergeIsByteIdenticalToSingleProcess)
{
    const SweepPlan plan = chipletPlan();
    const Domain &domain = findDomain(plan.domain);

    util::setThreadCount(1);
    const std::string reference =
        fullSweepResult(plan, domain.evaluator(plan)).dump();

    for (const std::size_t threads : {1u, 2u, 7u}) {
        util::setThreadCount(threads);
        EXPECT_EQ(fullSweepResult(plan, domain.evaluator(plan)).dump(),
                  reference)
            << "single-process, " << threads << " threads";
        for (const std::size_t shard_count : {1u, 3u}) {
            std::vector<ShardResult> partials;
            for (std::size_t i = 0; i < shard_count; ++i) {
                // Round-trip every partial through its file format,
                // exactly as the multi-process path would.
                const ShardResult partial = runShardedSweep(
                    plan, {shard_count, i}, domain.evaluator(plan));
                partials.push_back(
                    shardResultFromJson(toJson(partial)));
            }
            EXPECT_EQ(mergeShards(partials).dump(), reference)
                << shard_count << " shards, " << threads
                << " threads";
        }
    }
}

TEST_F(SweepChipletDomainTest, PointsCarryTheScenarioColumn)
{
    const SweepPlan plan = chipletPlan();
    const Domain &domain = findDomain(plan.domain);
    const config::JsonValue doc =
        fullSweepResult(plan, domain.evaluator(plan));

    std::size_t points = 0;
    for (const config::JsonValue &chunk :
         doc.at("results").asArray()) {
        for (const config::JsonValue &point : chunk.asArray()) {
            ++points;
            EXPECT_GT(point.at("total_g").asNumber(), 0.0);
            EXPECT_GT(point.at("package_yield").asNumber(), 0.0);
            EXPECT_LE(point.at("package_yield").asNumber(), 1.0);
            const config::JsonArray &totals =
                point.at("ci_fab_totals_g").asArray();
            ASSERT_EQ(totals.size(), 3u);
            // Embodied carbon is strictly increasing in fab CI.
            EXPECT_LT(totals[0].asNumber(), totals[1].asNumber());
            EXPECT_LT(totals[1].asNumber(), totals[2].asNumber());
        }
    }
    EXPECT_EQ(points, plan.items);
}

TEST_F(SweepChipletDomainTest, SummarizeNamesTheMinimum)
{
    const SweepPlan plan = chipletPlan();
    const Domain &domain = findDomain(plan.domain);
    const config::JsonValue doc =
        fullSweepResult(plan, domain.evaluator(plan));
    const std::string summary =
        domain.summarize(plan, doc.at("results").asArray());
    EXPECT_NE(summary.find("chiplet packaging sweep, 22 packages"),
              std::string::npos)
        << summary;
    EXPECT_NE(summary.find("minimum embodied"), std::string::npos);
}

// ---------------------------------------------------------------------
// Config validation
// ---------------------------------------------------------------------

class SweepChipletDeathTest : public SweepChipletDomainTest
{
  protected:
    void
    SetUp() override
    {
        ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    }

    static void
    prepareText(const std::string &text)
    {
        SweepPlan plan =
            sweepPlanFromJson(config::JsonValue::parse(text));
        findDomain(plan.domain).prepare(plan);
    }
};

TEST_F(SweepChipletDeathTest, MissingLogicAreaIsFatal)
{
    EXPECT_EXIT(
        prepareText(R"({"domain": "chiplet", "config": {}})"),
        ::testing::ExitedWithCode(1), "logic_area_mm2");
}

TEST_F(SweepChipletDeathTest, UnknownStyleIsFatal)
{
    EXPECT_EXIT(prepareText(R"({"domain": "chiplet", "config": {
                    "logic_area_mm2": 800, "styles": ["bogus"]}})"),
                ::testing::ExitedWithCode(1), "unknown packaging");
}

TEST_F(SweepChipletDeathTest, PinnedItemMismatchIsFatal)
{
    EXPECT_EXIT(prepareText(R"({"domain": "chiplet", "items": 5,
                    "config": {"logic_area_mm2": 800}})"),
                ::testing::ExitedWithCode(1), "pins 5 items");
}

TEST_F(SweepChipletDeathTest, EmptyGridIsFatal)
{
    // Multi-die styles with max_chiplets 1 span no points.
    EXPECT_EXIT(prepareText(R"({"domain": "chiplet", "config": {
                    "logic_area_mm2": 800, "max_chiplets": 1,
                    "styles": ["organic"]}})"),
                ::testing::ExitedWithCode(1), "no grid points");
}

TEST_F(SweepChipletDeathTest, UnknownDomainHintsAtListDomains)
{
    EXPECT_EXIT(findDomain("nope"), ::testing::ExitedWithCode(1),
                "list-domains");
}

} // namespace
} // namespace act::sweep
