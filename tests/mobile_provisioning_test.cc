/**
 * @file
 * Integration tests for the Section 6.1 provisioning study: Table 4,
 * Fig. 9's metric optima, break-even utilizations, and the Fig. 10
 * renewable-energy crossovers.
 */

#include <gtest/gtest.h>

#include "dse/scoreboard.h"
#include "mobile/provisioning.h"

namespace act::mobile {
namespace {

const core::FabParams kFab;
const core::OperationalParams kUse;  // 300 g/kWh US average

const ComputeBlock &
blockNamed(std::string_view name)
{
    for (const auto &block : snapdragon845Blocks()) {
        if (block.name == name)
            return block;
    }
    throw std::runtime_error("missing block");
}

TEST(Table4, LatencyAndPower)
{
    const auto results = provisioningTable(kFab, kUse);
    ASSERT_EQ(results.size(), 3u);
    EXPECT_EQ(results[0].name, "CPU");
    EXPECT_NEAR(util::asMilliseconds(results[0].latency), 6.0, 1e-9);
    EXPECT_NEAR(util::asWatts(results[0].power), 6.6, 1e-9);
    EXPECT_EQ(results[1].name, "GPU");
    EXPECT_NEAR(util::asMilliseconds(results[1].latency), 12.1, 1e-9);
    EXPECT_NEAR(util::asWatts(results[1].power), 2.9, 1e-9);
    EXPECT_EQ(results[2].name, "DSP");
    EXPECT_NEAR(util::asMilliseconds(results[2].latency), 9.2, 1e-9);
    EXPECT_NEAR(util::asWatts(results[2].power), 2.0, 1e-9);
}

TEST(Table4, OperationalFootprints)
{
    // 3.3 / 2.9 / 1.5 ug CO2 per inference (GPU/DSP labels corrected).
    const auto results = provisioningTable(kFab, kUse);
    EXPECT_NEAR(util::asMicrograms(results[0].opcf_per_inference), 3.3,
                0.05);
    EXPECT_NEAR(util::asMicrograms(results[1].opcf_per_inference), 2.9,
                0.05);
    EXPECT_NEAR(util::asMicrograms(results[2].opcf_per_inference), 1.5,
                0.05);
}

TEST(Table4, EmbodiedFootprints)
{
    // CPU 253 g; co-processors add 205 g (GPU) and 189 g (DSP) on top
    // of the host CPU.
    const auto results = provisioningTable(kFab, kUse);
    EXPECT_NEAR(util::asGrams(results[0].ecf_total), 253.0, 0.5);
    EXPECT_NEAR(util::asGrams(results[1].ecf_block), 205.0, 0.5);
    EXPECT_NEAR(util::asGrams(results[1].ecf_total), 458.0, 1.0);
    EXPECT_NEAR(util::asGrams(results[2].ecf_block), 189.0, 0.5);
    EXPECT_NEAR(util::asGrams(results[2].ecf_total), 442.0, 1.0);
}

TEST(Section61, DspEnergyAdvantage)
{
    // Prose: "the DSP achieves 2.2x lower energy per inference than
    // the CPU" (and the GPU ~1.1x).
    const auto results = provisioningTable(kFab, kUse);
    EXPECT_NEAR(results[0].energy / results[2].energy, 2.2, 0.05);
    EXPECT_NEAR(results[0].energy / results[1].energy, 1.13, 0.05);
}

TEST(Section61, EmbodiedOverheadRatios)
{
    // Co-processors increase the embodied footprint by ~1.8x.
    const auto results = provisioningTable(kFab, kUse);
    EXPECT_NEAR(util::asGrams(results[1].ecf_total) /
                    util::asGrams(results[0].ecf_total),
                1.81, 0.05);
    EXPECT_NEAR(util::asGrams(results[2].ecf_total) /
                    util::asGrams(results[0].ecf_total),
                1.75, 0.05);
}

TEST(Figure9, MetricOptima)
{
    // CPU optimal for embodied-centric CDP/C2EP; DSP optimal for
    // operational-centric CEP/CE2P.
    const dse::Scoreboard scoreboard(
        provisioningDesignSpace(kFab, kUse));
    EXPECT_EQ(scoreboard.winner(core::Metric::CDP), "CPU");
    EXPECT_EQ(scoreboard.winner(core::Metric::C2EP), "CPU");
    EXPECT_EQ(scoreboard.winner(core::Metric::CEP), "DSP");
    EXPECT_EQ(scoreboard.winner(core::Metric::CE2P), "DSP");
}

TEST(Section61, BreakEvenUtilizations)
{
    // Paper: offsetting the extra embodied footprint requires >5%
    // (GPU) and >1% (DSP) average lifetime utilization.
    const auto lifetime = util::years(3.0);
    const auto gpu = breakEvenUtilization(blockNamed("GPU"),
                                          blockNamed("CPU"), kFab, kUse,
                                          lifetime);
    const auto dsp = breakEvenUtilization(blockNamed("DSP"),
                                          blockNamed("CPU"), kFab, kUse,
                                          lifetime);
    ASSERT_TRUE(gpu.has_value());
    ASSERT_TRUE(dsp.has_value());
    EXPECT_NEAR(*dsp, 0.0104, 0.002);
    EXPECT_GT(*gpu, 0.05);
    EXPECT_LT(*gpu, 0.10);
}

TEST(Section61, BreakEvenScalesWithRenewableUse)
{
    // "These reuse frequencies linearly increase in the presence of
    // renewable energy during operation."
    const auto lifetime = util::years(3.0);
    const auto solar = core::OperationalParams::forSource(
        data::EnergySource::Solar);
    const auto us = breakEvenUtilization(blockNamed("DSP"),
                                         blockNamed("CPU"), kFab, kUse,
                                         lifetime);
    const auto green = breakEvenUtilization(blockNamed("DSP"),
                                            blockNamed("CPU"), kFab,
                                            solar, lifetime);
    ASSERT_TRUE(us.has_value() && green.has_value());
    EXPECT_NEAR(*green / *us, 300.0 / 41.0, 1e-6);
}

TEST(Section61, BreakEvenRequiresCoprocessor)
{
    EXPECT_EXIT(breakEvenUtilization(blockNamed("CPU"),
                                     blockNamed("CPU"), kFab, kUse,
                                     util::years(3.0)),
                ::testing::ExitedWithCode(1), "");
}

TEST(Figure10, RenewableOperationFavorsCpu)
{
    // Top panel: moving use-phase energy from coal to carbon-free
    // flips the optimum from DSP to CPU, a ~1.8x reduction at the
    // carbon-free end. The workload (inference count over the device
    // lifetime) is fixed across substrates.
    const auto lifetime = util::years(3.0);

    const auto evaluate = [&](data::EnergySource source) {
        const auto use = core::OperationalParams::forSource(source);
        const auto results = provisioningTable(kFab, use);
        const double inferences =
            inferencesAtUtilization(results[0], 0.05, lifetime);
        const double cpu = util::asGrams(
            perInferenceFootprint(results[0], inferences, use).total());
        const double dsp = util::asGrams(
            perInferenceFootprint(results[2], inferences, use).total());
        return std::make_pair(cpu, dsp);
    };

    const auto [cpu_coal, dsp_coal] = evaluate(data::EnergySource::Coal);
    EXPECT_LT(dsp_coal, cpu_coal);  // coal: efficiency wins

    const auto [cpu_free, dsp_free] =
        evaluate(data::EnergySource::CarbonFree);
    EXPECT_LT(cpu_free, dsp_free);  // carbon-free: embodied wins
    EXPECT_NEAR(dsp_free / cpu_free, 1.8, 0.1);
}

TEST(Figure10, GreenFabFavorsSpecialization)
{
    // Bottom panel: with renewable use-phase energy, cutting the fab
    // carbon intensity from coal to carbon-free flips CPU -> DSP.
    const auto lifetime = util::years(3.0);
    const auto use =
        core::OperationalParams::forSource(data::EnergySource::Solar);

    const auto evaluate = [&](util::CarbonIntensity ci_fab) {
        const auto fab = core::FabParams::withIntensity(ci_fab);
        const auto results = provisioningTable(fab, use);
        const double inferences =
            inferencesAtUtilization(results[0], 0.05, lifetime);
        const double cpu = util::asGrams(
            perInferenceFootprint(results[0], inferences, use).total());
        const double dsp = util::asGrams(
            perInferenceFootprint(results[2], inferences, use).total());
        return std::make_pair(cpu, dsp);
    };

    const auto [cpu_coal, dsp_coal] = evaluate(
        data::sourceIntensity(data::EnergySource::Coal));
    EXPECT_LT(cpu_coal, dsp_coal);  // dirty fab: lean CPU wins

    const auto [cpu_free, dsp_free] = evaluate(
        data::sourceIntensity(data::EnergySource::CarbonFree));
    EXPECT_LT(dsp_free, cpu_free);  // green fab: efficient DSP wins
}

TEST(PerInference, ArgumentBoundsChecked)
{
    const auto results = provisioningTable(kFab, kUse);
    EXPECT_EXIT(perInferenceFootprint(results[0], 0.0, kUse),
                ::testing::ExitedWithCode(1), "");
    EXPECT_EXIT(
        inferencesAtUtilization(results[0], 0.0, util::years(3.0)),
        ::testing::ExitedWithCode(1), "");
    EXPECT_EXIT(
        inferencesAtUtilization(results[0], 1.5, util::years(3.0)),
        ::testing::ExitedWithCode(1), "");
}

TEST(PerInference, EmbodiedShareFallsWithUtilization)
{
    // Higher reuse amortizes embodied carbon over more inferences.
    const auto results = provisioningTable(kFab, kUse);
    const auto lifetime = util::years(3.0);
    const auto low = perInferenceFootprint(
        results[2], inferencesAtUtilization(results[2], 0.01, lifetime),
        kUse);
    const auto high = perInferenceFootprint(
        results[2], inferencesAtUtilization(results[2], 0.5, lifetime),
        kUse);
    EXPECT_GT(util::asGrams(low.embodied_allocated),
              util::asGrams(high.embodied_allocated));
    EXPECT_DOUBLE_EQ(util::asGrams(low.operational),
                     util::asGrams(high.operational));
}

} // namespace
} // namespace act::mobile
