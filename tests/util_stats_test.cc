/** @file Unit tests for the statistics helpers. */

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/stats.h"

namespace act::util {
namespace {

TEST(Stats, Mean)
{
    const std::vector<double> values = {1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(mean(values), 2.5);
}

TEST(Stats, GeomeanMatchesClosedForm)
{
    const std::vector<double> values = {1.0, 4.0, 16.0};
    EXPECT_NEAR(geomean(values), 4.0, 1e-12);
}

TEST(Stats, GeomeanIsBelowMeanForDispersedValues)
{
    const std::vector<double> values = {1.0, 100.0};
    EXPECT_LT(geomean(values), mean(values));
}

TEST(Stats, GeomeanRejectsNonPositive)
{
    const std::vector<double> values = {1.0, 0.0};
    EXPECT_EXIT(geomean(values), ::testing::ExitedWithCode(1), "");
}

TEST(Stats, EmptyRangesAreFatal)
{
    const std::vector<double> empty;
    EXPECT_EXIT(mean(empty), ::testing::ExitedWithCode(1), "");
    EXPECT_EXIT(geomean(empty), ::testing::ExitedWithCode(1), "");
    EXPECT_EXIT(argmin(empty), ::testing::ExitedWithCode(1), "");
    EXPECT_EXIT(argmax(empty), ::testing::ExitedWithCode(1), "");
    EXPECT_EXIT(minValue(empty), ::testing::ExitedWithCode(1), "");
}

TEST(Stats, StddevOfConstantIsZero)
{
    const std::vector<double> values = {3.0, 3.0, 3.0};
    EXPECT_DOUBLE_EQ(stddev(values), 0.0);
}

TEST(Stats, StddevKnownValue)
{
    const std::vector<double> values = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0,
                                        7.0, 9.0};
    EXPECT_NEAR(stddev(values), 2.0, 1e-12);
}

TEST(Stats, ArgminArgmaxAndExtremes)
{
    const std::vector<double> values = {3.0, 1.0, 4.0, 1.5, 9.0, 2.0};
    EXPECT_EQ(argmin(values), 1u);
    EXPECT_EQ(argmax(values), 4u);
    EXPECT_DOUBLE_EQ(minValue(values), 1.0);
    EXPECT_DOUBLE_EQ(maxValue(values), 9.0);
}

TEST(Stats, CompoundAnnualGrowth)
{
    // 100 -> 121 over 2 periods is 10% per period.
    const std::vector<double> series = {100.0, 105.0, 121.0};
    EXPECT_NEAR(compoundAnnualGrowth(series), 1.1, 1e-12);
}

TEST(Stats, CompoundAnnualGrowthNeedsTwoSamples)
{
    const std::vector<double> series = {100.0};
    EXPECT_EXIT(compoundAnnualGrowth(series),
                ::testing::ExitedWithCode(1), "");
}

TEST(Stats, FitLineExact)
{
    const std::vector<double> x = {0.0, 1.0, 2.0, 3.0};
    const std::vector<double> y = {1.0, 3.0, 5.0, 7.0};
    const LinearFit fit = fitLine(x, y);
    EXPECT_NEAR(fit.slope, 2.0, 1e-12);
    EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
    EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(Stats, FitLineNoisyR2BelowOne)
{
    const std::vector<double> x = {0.0, 1.0, 2.0, 3.0};
    const std::vector<double> y = {1.0, 2.5, 5.5, 7.0};
    const LinearFit fit = fitLine(x, y);
    EXPECT_GT(fit.r2, 0.9);
    EXPECT_LT(fit.r2, 1.0);
}

TEST(Stats, NormalizeBy)
{
    const std::vector<double> values = {2.0, 4.0, 8.0};
    const auto normalized = normalizeBy(values, 4.0);
    ASSERT_EQ(normalized.size(), 3u);
    EXPECT_DOUBLE_EQ(normalized[0], 0.5);
    EXPECT_DOUBLE_EQ(normalized[1], 1.0);
    EXPECT_DOUBLE_EQ(normalized[2], 2.0);
}

TEST(Stats, NormalizeByZeroIsFatal)
{
    const std::vector<double> values = {1.0};
    EXPECT_EXIT(normalizeBy(values, 0.0), ::testing::ExitedWithCode(1),
                "");
}

/** Property: geomean is scale-equivariant: geomean(k*x) = k*geomean(x). */
class GeomeanScale : public ::testing::TestWithParam<double> {};

TEST_P(GeomeanScale, ScaleEquivariance)
{
    const double k = GetParam();
    const std::vector<double> values = {1.3, 2.7, 8.1, 0.4};
    std::vector<double> scaled;
    for (double v : values)
        scaled.push_back(k * v);
    EXPECT_NEAR(geomean(scaled), k * geomean(values),
                1e-9 * k * geomean(values));
}

INSTANTIATE_TEST_SUITE_P(Sweep, GeomeanScale,
                         ::testing::Values(0.001, 0.5, 1.0, 7.0, 1e4));

} // namespace
} // namespace act::util
