/**
 * @file
 * Unit tests for the strongly-typed quantity system: constructors,
 * accessors, arithmetic, and the cross-dimension products the ACT
 * model relies on.
 */

#include <gtest/gtest.h>

#include "util/units.h"

namespace act::util {
namespace {

TEST(Units, MassConstructorsAgree)
{
    EXPECT_DOUBLE_EQ(asGrams(kilograms(1.0)), 1000.0);
    EXPECT_DOUBLE_EQ(asGrams(tonnes(1.0)), 1e6);
    EXPECT_DOUBLE_EQ(asKilograms(grams(500.0)), 0.5);
    EXPECT_DOUBLE_EQ(asMicrograms(grams(1.0)), 1e6);
}

TEST(Units, EnergyConstructorsAgree)
{
    EXPECT_DOUBLE_EQ(asJoules(kilowattHours(1.0)), 3.6e6);
    EXPECT_DOUBLE_EQ(asKilowattHours(joules(3.6e6)), 1.0);
    EXPECT_DOUBLE_EQ(asMillijoules(millijoules(42.0)), 42.0);
    EXPECT_DOUBLE_EQ(asKilowattHours(wattHours(1000.0)), 1.0);
}

TEST(Units, AreaConstructorsAgree)
{
    EXPECT_DOUBLE_EQ(asSquareCentimeters(squareMillimeters(100.0)), 1.0);
    EXPECT_DOUBLE_EQ(asSquareMillimeters(squareCentimeters(2.0)), 200.0);
}

TEST(Units, DurationConstructorsAgree)
{
    EXPECT_DOUBLE_EQ(asSeconds(milliseconds(1500.0)), 1.5);
    EXPECT_DOUBLE_EQ(asSeconds(hours(2.0)), 7200.0);
    EXPECT_DOUBLE_EQ(asSeconds(days(1.0)), 86400.0);
    EXPECT_DOUBLE_EQ(asYears(years(3.0)), 3.0);
    EXPECT_DOUBLE_EQ(asSeconds(years(1.0)), 365.0 * 86400.0);
}

TEST(Units, CapacityAndPower)
{
    EXPECT_DOUBLE_EQ(asGigabytes(terabytes(2.0)), 2000.0);
    EXPECT_DOUBLE_EQ(asWatts(milliwatts(2500.0)), 2.5);
}

TEST(Units, SameDimensionArithmetic)
{
    const Mass a = grams(10.0);
    const Mass b = grams(4.0);
    EXPECT_DOUBLE_EQ(asGrams(a + b), 14.0);
    EXPECT_DOUBLE_EQ(asGrams(a - b), 6.0);
    EXPECT_DOUBLE_EQ(asGrams(a * 2.5), 25.0);
    EXPECT_DOUBLE_EQ(asGrams(2.5 * a), 25.0);
    EXPECT_DOUBLE_EQ(asGrams(a / 2.0), 5.0);
    EXPECT_DOUBLE_EQ(a / b, 2.5);
    EXPECT_DOUBLE_EQ(asGrams(-a), -10.0);
}

TEST(Units, CompoundAssignment)
{
    Mass m = grams(1.0);
    m += grams(2.0);
    m -= grams(0.5);
    m *= 4.0;
    EXPECT_DOUBLE_EQ(asGrams(m), 10.0);
}

TEST(Units, Comparisons)
{
    EXPECT_LT(grams(1.0), grams(2.0));
    EXPECT_GT(kilograms(1.0), grams(999.0));
    EXPECT_EQ(grams(5.0), grams(5.0));
    EXPECT_LE(grams(5.0), grams(5.0));
}

TEST(Units, OperationalProductEq2)
{
    // OPCF = CI_use x Energy: 300 g/kWh x 2 kWh = 600 g.
    const Mass opcf = gramsPerKilowattHour(300.0) * kilowattHours(2.0);
    EXPECT_DOUBLE_EQ(asGrams(opcf), 600.0);
    EXPECT_DOUBLE_EQ(
        asGrams(kilowattHours(2.0) * gramsPerKilowattHour(300.0)), 600.0);
}

TEST(Units, EmbodiedAreaProductEq4)
{
    // 1000 g/cm2 x 150 mm2 = 1500 g.
    const Mass mass = gramsPerCm2(1000.0) * squareMillimeters(150.0);
    EXPECT_DOUBLE_EQ(asGrams(mass), 1500.0);
}

TEST(Units, CapacityProductEq6)
{
    const Mass mass = gramsPerGigabyte(48.0) * gigabytes(8.0);
    EXPECT_DOUBLE_EQ(asGrams(mass), 384.0);
}

TEST(Units, FabEnergyPerAreaConversion)
{
    // CI_fab x EPA: 500 g/kWh x 2 kWh/cm2 = 1000 g/cm2.
    const CarbonPerArea cpa =
        gramsPerKilowattHour(500.0) * kilowattHoursPerCm2(2.0);
    EXPECT_DOUBLE_EQ(cpa.value(), 1000.0);
    const Energy fab_energy =
        kilowattHoursPerCm2(2.0) * squareCentimeters(3.0);
    EXPECT_DOUBLE_EQ(asKilowattHours(fab_energy), 6.0);
}

TEST(Units, PowerTimeProduct)
{
    // 6.6 W x 6 ms = 39.6 mJ (the paper's Table 4 CPU energy).
    const Energy energy = watts(6.6) * milliseconds(6.0);
    EXPECT_NEAR(asMillijoules(energy), 39.6, 1e-9);
    EXPECT_NEAR(asWatts(energy / milliseconds(6.0)), 6.6, 1e-9);
}

TEST(Units, PerUnitRecovery)
{
    EXPECT_DOUBLE_EQ((grams(100.0) / squareCentimeters(2.0)).value(),
                     50.0);
    EXPECT_DOUBLE_EQ((grams(100.0) / gigabytes(4.0)).value(), 25.0);
    EXPECT_DOUBLE_EQ((grams(100.0) / kilowattHours(0.5)).value(), 200.0);
}

/** Round-trip property: natural-unit accessors invert constructors. */
class UnitsRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(UnitsRoundTrip, MassEnergyAreaDuration)
{
    const double v = GetParam();
    EXPECT_NEAR(asKilograms(kilograms(v)), v, 1e-12 * std::abs(v));
    EXPECT_NEAR(asJoules(joules(v)), v, 1e-9 * std::abs(v));
    EXPECT_NEAR(asSquareMillimeters(squareMillimeters(v)), v,
                1e-12 * std::abs(v));
    EXPECT_NEAR(asMilliseconds(milliseconds(v)), v, 1e-12 * std::abs(v));
    EXPECT_NEAR(asYears(years(v)), v, 1e-12 * std::abs(v));
}

INSTANTIATE_TEST_SUITE_P(Sweep, UnitsRoundTrip,
                         ::testing::Values(0.0, 1e-6, 0.25, 1.0, 42.0,
                                           1e3, 1e9));

} // namespace
} // namespace act::util
