/** @file Tests for the Table 2 optimization metrics. */

#include <gtest/gtest.h>

#include "core/metrics.h"

namespace act::core {
namespace {

DesignPoint
makePoint(const std::string &name, double c_grams, double e_kwh,
          double d_seconds, double a_cm2)
{
    DesignPoint point;
    point.name = name;
    point.embodied = util::grams(c_grams);
    point.energy = util::kilowattHours(e_kwh);
    point.delay = util::seconds(d_seconds);
    point.area = util::squareCentimeters(a_cm2);
    return point;
}

TEST(Metrics, FormulasMatchDefinitions)
{
    const DesignPoint p = makePoint("p", 10.0, 2.0, 3.0, 4.0);
    EXPECT_DOUBLE_EQ(evaluateMetric(Metric::EDP, p), 2.0 * 3.0);
    EXPECT_DOUBLE_EQ(evaluateMetric(Metric::EDAP, p), 2.0 * 3.0 * 4.0);
    EXPECT_DOUBLE_EQ(evaluateMetric(Metric::CDP, p), 10.0 * 3.0);
    EXPECT_DOUBLE_EQ(evaluateMetric(Metric::CEP, p), 10.0 * 2.0);
    EXPECT_DOUBLE_EQ(evaluateMetric(Metric::C2EP, p), 100.0 * 2.0);
    EXPECT_DOUBLE_EQ(evaluateMetric(Metric::CE2P, p), 10.0 * 4.0);
}

TEST(Metrics, EnumerationsMatchTable2)
{
    EXPECT_EQ(allMetrics().size(), 6u);
    EXPECT_EQ(carbonMetrics().size(), 4u);
    EXPECT_EQ(metricName(Metric::EDP), "EDP");
    EXPECT_EQ(metricName(Metric::C2EP), "C2EP");
    EXPECT_FALSE(isCarbonAware(Metric::EDP));
    EXPECT_FALSE(isCarbonAware(Metric::EDAP));
    for (Metric m : carbonMetrics())
        EXPECT_TRUE(isCarbonAware(m));
}

TEST(Metrics, UseCasesMentionTheRightDomains)
{
    EXPECT_NE(std::string(metricUseCase(Metric::CDP)).find("data center"),
              std::string::npos);
    EXPECT_NE(std::string(metricUseCase(Metric::CEP)).find("mobile"),
              std::string::npos);
    EXPECT_NE(std::string(metricUseCase(Metric::C2EP)).find("embodied"),
              std::string::npos);
    EXPECT_NE(
        std::string(metricUseCase(Metric::CE2P)).find("operational"),
        std::string::npos);
}

TEST(Metrics, BestDesignPicksDistinctWinnersPerMetric)
{
    // Three designs spanning the classic trade-off: a small efficient
    // one, a balanced one, and a fast power-hungry one.
    const std::vector<DesignPoint> points = {
        makePoint("small", 1.0, 4.0, 8.0, 0.5),
        makePoint("balanced", 2.0, 2.0, 2.0, 1.0),
        makePoint("fast", 8.0, 3.0, 1.0, 4.0),
    };
    EXPECT_EQ(points[bestDesign(Metric::EDP, points)].name, "fast");
    EXPECT_EQ(points[bestDesign(Metric::CEP, points)].name, "small");
    EXPECT_EQ(points[bestDesign(Metric::C2EP, points)].name, "small");
    EXPECT_EQ(points[bestDesign(Metric::CDP, points)].name, "balanced");
}

TEST(Metrics, BestDesignOnEmptySpaceIsFatal)
{
    const std::vector<DesignPoint> empty;
    EXPECT_EXIT(bestDesign(Metric::EDP, empty),
                ::testing::ExitedWithCode(1), "");
}

TEST(Metrics, NormalizationBaselineIsOne)
{
    const std::vector<DesignPoint> points = {
        makePoint("a", 1.0, 1.0, 1.0, 1.0),
        makePoint("b", 2.0, 2.0, 2.0, 2.0),
    };
    const auto normalized = normalizedMetric(Metric::CEP, points, 0);
    EXPECT_DOUBLE_EQ(normalized[0], 1.0);
    EXPECT_DOUBLE_EQ(normalized[1], 4.0);

    const auto normalized_b = normalizedMetric(Metric::CEP, points, 1);
    EXPECT_DOUBLE_EQ(normalized_b[1], 1.0);
    EXPECT_DOUBLE_EQ(normalized_b[0], 0.25);
}

TEST(Metrics, NormalizationErrors)
{
    const std::vector<DesignPoint> points = {
        makePoint("zero", 0.0, 0.0, 0.0, 0.0)};
    EXPECT_EXIT(normalizedMetric(Metric::CEP, points, 1),
                ::testing::ExitedWithCode(1), "");
    EXPECT_EXIT(normalizedMetric(Metric::CEP, points, 0),
                ::testing::ExitedWithCode(1), "");
}

/**
 * Property: scaling every design's carbon by a constant never changes
 * any metric's winner (metrics are scale-invariant rankings).
 */
class MetricScaleInvariance
    : public ::testing::TestWithParam<Metric> {};

TEST_P(MetricScaleInvariance, WinnerUnchangedUnderScaling)
{
    const Metric metric = GetParam();
    std::vector<DesignPoint> points = {
        makePoint("a", 3.0, 2.0, 5.0, 1.0),
        makePoint("b", 5.0, 1.0, 4.0, 2.0),
        makePoint("c", 9.0, 0.5, 2.0, 3.0),
    };
    const std::size_t before = bestDesign(metric, points);
    for (auto &point : points) {
        point.embodied *= 7.0;
        point.energy *= 3.0;
        point.delay *= 2.0;
        point.area *= 11.0;
    }
    EXPECT_EQ(bestDesign(metric, points), before);
}

INSTANTIATE_TEST_SUITE_P(AllMetrics, MetricScaleInvariance,
                         ::testing::Values(Metric::EDP, Metric::EDAP,
                                           Metric::CDP, Metric::CEP,
                                           Metric::C2EP, Metric::CE2P));

} // namespace
} // namespace act::core
