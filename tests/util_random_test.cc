/** @file Tests for the deterministic PRNG and its distributions. */

#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"
#include "util/stats.h"

namespace act::util {
namespace {

TEST(Random, DeterministicForFixedSeed)
{
    Xorshift64Star a(7);
    Xorshift64Star b(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
    Xorshift64Star c(8);
    EXPECT_NE(a.next(), c.next());
}

TEST(Random, UnitValuesStayInRange)
{
    Xorshift64Star rng(1);
    for (int i = 0; i < 10'000; ++i) {
        const double u = rng.nextUnit();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Random, NextBelowCoversAndBounds)
{
    Xorshift64Star rng(2);
    std::vector<bool> seen(10, false);
    for (int i = 0; i < 10'000; ++i) {
        const std::uint64_t v = rng.nextBelow(10);
        ASSERT_LT(v, 10u);
        seen[v] = true;
    }
    for (bool hit : seen)
        EXPECT_TRUE(hit);
    EXPECT_EXIT(rng.nextBelow(0), ::testing::ExitedWithCode(1), "");
}

TEST(Random, UniformMeanConverges)
{
    Xorshift64Star rng(3);
    double sum = 0.0;
    constexpr int kSamples = 100'000;
    for (int i = 0; i < kSamples; ++i)
        sum += rng.nextUniform(10.0, 20.0);
    EXPECT_NEAR(sum / kSamples, 15.0, 0.05);
}

TEST(Random, NormalMomentsConverge)
{
    Xorshift64Star rng(4);
    constexpr int kSamples = 100'000;
    std::vector<double> samples;
    samples.reserve(kSamples);
    for (int i = 0; i < kSamples; ++i)
        samples.push_back(rng.nextNormal(5.0, 2.0));
    EXPECT_NEAR(mean(samples), 5.0, 0.05);
    EXPECT_NEAR(stddev(samples), 2.0, 0.05);
}

TEST(Random, LogNormalMedianAndPositivity)
{
    Xorshift64Star rng(5);
    constexpr int kSamples = 100'001;
    std::vector<double> samples;
    samples.reserve(kSamples);
    for (int i = 0; i < kSamples; ++i) {
        const double v = rng.nextLogNormal(100.0, 1.5);
        EXPECT_GT(v, 0.0);
        samples.push_back(v);
    }
    std::sort(samples.begin(), samples.end());
    EXPECT_NEAR(samples[kSamples / 2], 100.0, 2.0);
    EXPECT_EXIT(rng.nextLogNormal(0.0, 1.5),
                ::testing::ExitedWithCode(1), "");
    EXPECT_EXIT(rng.nextLogNormal(1.0, 1.0),
                ::testing::ExitedWithCode(1), "");
}

} // namespace
} // namespace act::util
