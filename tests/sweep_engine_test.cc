/**
 * @file
 * Tests for the unified sweep engine: plan serialization, shard
 * tiling, and the core contract -- a sweep split across shards and
 * merged is byte-identical to the single-process run, for any shard
 * count and any thread count.
 */

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/embodied.h"
#include "core/fab_params.h"
#include "core/model_config.h"
#include "dse/montecarlo.h"
#include "sweep/domains.h"
#include "sweep/engine.h"
#include "sweep/plan.h"
#include "util/parallel.h"
#include "util/units.h"

namespace act::sweep {
namespace {

class SweepEngineTest : public ::testing::Test
{
  protected:
    void TearDown() override { util::setThreadCount(0); }
};

// ---------------------------------------------------------------------
// Plan serialization
// ---------------------------------------------------------------------

TEST_F(SweepEngineTest, PlanJsonRoundTrip)
{
    SweepPlan plan;
    plan.domain = "cpa_montecarlo";
    plan.items = 12'345;
    plan.grain = 512;
    plan.seed = 977;
    plan.fingerprint = core::modelConfigFingerprint();
    config::JsonObject domain_config;
    domain_config["node_nm"] = config::JsonValue(14.0);
    plan.config = config::JsonValue(std::move(domain_config));

    const std::string dumped = toJson(plan).dump();
    const SweepPlan parsed =
        sweepPlanFromJson(config::JsonValue::parse(dumped));
    EXPECT_EQ(parsed.domain, plan.domain);
    EXPECT_EQ(parsed.items, plan.items);
    EXPECT_EQ(parsed.grain, plan.grain);
    EXPECT_EQ(parsed.seed, plan.seed);
    EXPECT_EQ(parsed.fingerprint, plan.fingerprint);
    // Re-serializing must reproduce the document exactly; shard-merge
    // plan comparison depends on this.
    EXPECT_EQ(toJson(parsed).dump(), dumped);
}

TEST_F(SweepEngineTest, PlanRoundTripsSeedsBeyondDoublePrecision)
{
    SweepPlan plan;
    plan.domain = "mobile";
    plan.seed = (1ULL << 62) + 3'141'592'653ULL;
    const SweepPlan parsed = sweepPlanFromJson(
        config::JsonValue::parse(toJson(plan).dump()));
    EXPECT_EQ(parsed.seed, plan.seed);
}

TEST_F(SweepEngineTest, PlanRequiresDomain)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_EXIT(sweepPlanFromJson(config::JsonValue::parse("{}")),
                ::testing::ExitedWithCode(1), "");
}

// ---------------------------------------------------------------------
// Shard tiling
// ---------------------------------------------------------------------

TEST_F(SweepEngineTest, ShardsTileChunksExactly)
{
    for (const std::size_t chunks : {1u, 2u, 5u, 13u, 64u}) {
        for (const std::size_t shards : {1u, 2u, 3u, 5u, 13u}) {
            std::size_t covered = 0;
            std::size_t previous_end = 0;
            for (std::size_t i = 0; i < shards; ++i) {
                const util::IndexRange range =
                    shardChunkRange(chunks, {shards, i});
                EXPECT_EQ(range.begin, previous_end)
                    << chunks << " chunks, shard " << i << "/" << shards;
                previous_end = range.end;
                covered += range.size();
            }
            EXPECT_EQ(previous_end, chunks);
            EXPECT_EQ(covered, chunks);
        }
    }
}

TEST_F(SweepEngineTest, InvalidShardSpecIsFatal)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_EXIT(validateShard({0, 0}), ::testing::ExitedWithCode(1),
                "");
    EXPECT_EXIT(validateShard({3, 3}), ::testing::ExitedWithCode(1),
                "");
}

// ---------------------------------------------------------------------
// Shard-vs-single bit-identity
// ---------------------------------------------------------------------

/** A 10k-sample CPA Monte Carlo plan (5 chunks of 2048). */
SweepPlan
monteCarloPlan()
{
    const std::string text = R"({
        "domain": "cpa_montecarlo",
        "items": 10000,
        "seed": 42,
        "config": {
            "node_nm": 14,
            "parameters": [
                {"name": "ci_fab_g_per_kwh", "distribution": "uniform",
                 "low": 30, "high": 700},
                {"name": "yield", "distribution": "triangular",
                 "low": 0.8, "baseline": 0.875, "high": 0.95},
                {"name": "abatement", "distribution": "uniform",
                 "low": 0.9, "high": 1.0}
            ]
        }
    })";
    SweepPlan plan =
        sweepPlanFromJson(config::JsonValue::parse(text));
    findDomain(plan.domain).prepare(plan);
    return plan;
}

TEST_F(SweepEngineTest, ShardedMergeIsByteIdenticalToSingleProcess)
{
    const SweepPlan plan = monteCarloPlan();
    const Domain &domain = findDomain(plan.domain);

    util::setThreadCount(1);
    const std::string reference =
        fullSweepResult(plan, domain.evaluator(plan)).dump();

    for (const std::size_t threads : {1u, 7u}) {
        util::setThreadCount(threads);
        EXPECT_EQ(fullSweepResult(plan, domain.evaluator(plan)).dump(),
                  reference)
            << "single-process, " << threads << " threads";
        for (const std::size_t shard_count : {1u, 2u, 5u}) {
            std::vector<ShardResult> partials;
            for (std::size_t i = 0; i < shard_count; ++i) {
                // Round-trip every partial through its file format,
                // exactly as the multi-process path would.
                const ShardResult partial = runShardedSweep(
                    plan, {shard_count, i}, domain.evaluator(plan));
                partials.push_back(
                    shardResultFromJson(toJson(partial)));
            }
            EXPECT_EQ(mergeShards(partials).dump(), reference)
                << shard_count << " shards, " << threads
                << " threads";
        }
    }
}

TEST_F(SweepEngineTest, MetricsAndHeartbeatsNeverChangeTheResult)
{
    const SweepPlan plan = monteCarloPlan();
    const Domain &domain = findDomain(plan.domain);
    const std::string reference =
        fullSweepResult(plan, domain.evaluator(plan)).dump();

    const config::JsonValue metrics = config::JsonValue::parse(R"({
        "format": "act.metrics.v1",
        "counters": {"sweep.items": 5000},
        "gauges": {},
        "histograms": {}
    })");

    ShardRunOptions options;
    options.heartbeat_path =
        "sweep_engine_test_hb.heartbeat.json";
    options.heartbeat_interval_s = 0.0;

    std::vector<ShardResult> partials;
    for (std::size_t i = 0; i < 2; ++i) {
        ShardResult partial = runShardedSweep(
            plan, {2, i}, domain.evaluator(plan), options);
        partial.metrics = metrics;
        // Round-trip through the file format: the metrics section
        // must survive the partial...
        ShardResult restored =
            shardResultFromJson(toJson(partial));
        EXPECT_EQ(restored.metrics.dump(), metrics.dump());
        partials.push_back(std::move(restored));
    }
    // ...and the merged result document must not contain it.
    EXPECT_EQ(mergeShards(partials).dump(), reference);
    std::remove(options.heartbeat_path.c_str());
}

TEST_F(SweepEngineTest, MergedResultMatchesInProcessMonteCarlo)
{
    const SweepPlan plan = monteCarloPlan();
    const Domain &domain = findDomain(plan.domain);

    std::vector<ShardResult> partials;
    for (std::size_t i = 0; i < 3; ++i)
        partials.push_back(
            runShardedSweep(plan, {3, i}, domain.evaluator(plan)));
    const config::JsonValue merged = mergeShards(partials);
    const dse::MonteCarloResult sharded =
        monteCarloResultFromPayloads(
            plan.items, merged.at("results").asArray());

    // The same sweep evaluated wholly in process, through
    // dse::monteCarlo, with a hand-built model identical to the
    // domain's: every statistic must agree bit-for-bit.
    std::vector<dse::UncertainParameter> parameters(3);
    parameters[0] = {"ci_fab", dse::Distribution::Uniform, 365.0, 30.0,
                     700.0};
    parameters[1] = {"yield", dse::Distribution::Triangular, 0.875,
                     0.8, 0.95};
    parameters[2] = {"abatement", dse::Distribution::Uniform, 0.95,
                     0.9, 1.0};
    const auto model = [](const std::vector<double> &values) {
        core::FabParams fab;
        fab.ci_fab = util::gramsPerKilowattHour(values[0]);
        fab.yield = values[1];
        fab.abatement = values[2];
        return core::carbonPerArea(fab, 14.0).value();
    };
    const dse::MonteCarloResult direct =
        dse::monteCarlo(parameters, model, plan.items, plan.seed);

    EXPECT_EQ(sharded.samples, direct.samples);
    EXPECT_EQ(sharded.mean, direct.mean);
    EXPECT_EQ(sharded.stddev, direct.stddev);
    EXPECT_EQ(sharded.p5, direct.p5);
    EXPECT_EQ(sharded.p50, direct.p50);
    EXPECT_EQ(sharded.p95, direct.p95);
    EXPECT_EQ(sharded.min, direct.min);
    EXPECT_EQ(sharded.max, direct.max);
}

// ---------------------------------------------------------------------
// Merge rejection
// ---------------------------------------------------------------------

class SweepMergeDeathTest : public SweepEngineTest
{
  protected:
    void
    SetUp() override
    {
        ::testing::FLAGS_gtest_death_test_style = "threadsafe";
        plan_ = monteCarloPlan();
        const Domain &domain = findDomain(plan_.domain);
        for (std::size_t i = 0; i < 2; ++i)
            partials_.push_back(runShardedSweep(
                plan_, {2, i}, domain.evaluator(plan_)));
    }

    SweepPlan plan_;
    std::vector<ShardResult> partials_;
};

TEST_F(SweepMergeDeathTest, RejectsMissingPartial)
{
    EXPECT_EXIT(mergeShards({partials_[0]}),
                ::testing::ExitedWithCode(1), "");
}

TEST_F(SweepMergeDeathTest, RejectsDuplicateShard)
{
    EXPECT_EXIT(mergeShards({partials_[0], partials_[0]}),
                ::testing::ExitedWithCode(1), "");
}

TEST_F(SweepMergeDeathTest, RejectsMismatchedPlans)
{
    ShardResult other = partials_[1];
    other.plan.seed ^= 1;
    EXPECT_EXIT(mergeShards({partials_[0], other}),
                ::testing::ExitedWithCode(1), "");
}

TEST_F(SweepMergeDeathTest, RejectsMismatchedShardCounts)
{
    const Domain &domain = findDomain(plan_.domain);
    const ShardResult stray =
        runShardedSweep(plan_, {3, 1}, domain.evaluator(plan_));
    EXPECT_EXIT(mergeShards({partials_[0], stray}),
                ::testing::ExitedWithCode(1), "");
}

} // namespace
} // namespace act::sweep
