/** @file Tests for JSON device definitions and life-cycle estimation. */

#include <gtest/gtest.h>

#include "core/lifecycle.h"
#include "data/device_json.h"

namespace act::data {
namespace {

const char *kCustomPhone = R"({
    "name": "custom-phone",
    "release_year": 2024,
    "ics": [
        {"name": "SoC", "kind": "logic", "category": "main_soc",
         "area_mm2": 100, "node_nm": 5, "packages": 1},
        {"name": "Modem", "kind": "logic", "area_mm2": 50,
         "node_nm": 7, "fab_node": "7nm-EUV"},
        {"name": "DRAM", "kind": "dram", "category": "dram",
         "capacity_gb": 12, "technology": "LPDDR4"},
        {"name": "Flash", "kind": "nand", "category": "flash",
         "capacity_gb": 256, "technology": "1z NAND TLC",
         "packages": 2}
    ],
    "lca": {"total_kg": 60, "production_share": 0.8,
            "use_share": 0.15, "transport_share": 0.04,
            "eol_share": 0.01, "ic_share_of_production": 0.5}
})";

TEST(DeviceJson, ParsesCustomDevice)
{
    const DeviceRecord device =
        deviceFromJson(config::JsonValue::parse(kCustomPhone));
    EXPECT_EQ(device.name, "custom-phone");
    EXPECT_EQ(device.release_year, 2024);
    ASSERT_EQ(device.ics.size(), 4u);
    EXPECT_EQ(device.ics[0].kind, IcKind::Logic);
    EXPECT_EQ(device.ics[0].category, IcCategory::MainSoc);
    EXPECT_DOUBLE_EQ(
        util::asSquareMillimeters(device.ics[0].area), 100.0);
    EXPECT_EQ(device.ics[1].fab_node_name, "7nm-EUV");
    EXPECT_EQ(device.ics[1].category, IcCategory::OtherIc);  // default
    EXPECT_DOUBLE_EQ(util::asGigabytes(device.ics[3].capacity), 256.0);
    EXPECT_EQ(device.ics[3].package_count, 2);
    EXPECT_DOUBLE_EQ(util::asKilograms(device.lca.total), 60.0);
}

TEST(DeviceJson, EvaluatesUnderTheEmbodiedModel)
{
    const DeviceRecord device =
        deviceFromJson(config::JsonValue::parse(kCustomPhone));
    const core::EmbodiedModel model;
    const auto footprint = model.evaluate(device);
    EXPECT_GT(util::asKilograms(footprint.total()), 2.0);
    EXPECT_EQ(footprint.package_count, 5);
    // 12 GB LPDDR4 at 48 g/GB.
    EXPECT_DOUBLE_EQ(
        util::asGrams(footprint.categoryTotal(IcCategory::Dram)),
        12.0 * 48.0);
}

TEST(DeviceJson, RoundTripsThroughText)
{
    const DeviceRecord device =
        deviceFromJson(config::JsonValue::parse(kCustomPhone));
    const DeviceRecord reloaded = deviceFromJson(toJson(device));
    ASSERT_EQ(reloaded.ics.size(), device.ics.size());
    for (std::size_t i = 0; i < device.ics.size(); ++i) {
        EXPECT_EQ(reloaded.ics[i].name, device.ics[i].name);
        EXPECT_EQ(reloaded.ics[i].kind, device.ics[i].kind);
        EXPECT_EQ(reloaded.ics[i].category, device.ics[i].category);
        EXPECT_EQ(reloaded.ics[i].package_count,
                  device.ics[i].package_count);
    }
    const core::EmbodiedModel model;
    EXPECT_DOUBLE_EQ(
        util::asGrams(model.evaluate(device).total()),
        util::asGrams(model.evaluate(reloaded).total()));
}

TEST(DeviceJson, BuiltinDevicesRoundTrip)
{
    const core::EmbodiedModel model;
    for (const auto &device : DeviceDatabase::instance().records()) {
        const DeviceRecord reloaded = deviceFromJson(toJson(device));
        if (device.ics.empty())
            continue;
        EXPECT_NEAR(util::asGrams(model.evaluate(reloaded).total()),
                    util::asGrams(model.evaluate(device).total()), 1e-6)
            << device.name;
    }
}

TEST(DeviceJson, RejectsBadDefinitions)
{
    const auto parse_device = [](const char *text) {
        return deviceFromJson(config::JsonValue::parse(text));
    };
    // Unknown kind.
    EXPECT_EXIT(parse_device(R"({"name": "x", "ics": [
                    {"name": "a", "kind": "quantum"}]})"),
                ::testing::ExitedWithCode(1), "");
    // Logic without area.
    EXPECT_EXIT(parse_device(R"({"name": "x", "ics": [
                    {"name": "a", "kind": "logic", "node_nm": 7}]})"),
                ::testing::ExitedWithCode(1), "");
    // Out-of-range node.
    EXPECT_EXIT(parse_device(R"({"name": "x", "ics": [
                    {"name": "a", "kind": "logic", "area_mm2": 10,
                     "node_nm": 90}]})"),
                ::testing::ExitedWithCode(1), "");
    // Unknown storage technology.
    EXPECT_EXIT(parse_device(R"({"name": "x", "ics": [
                    {"name": "a", "kind": "nand", "capacity_gb": 64,
                     "technology": "optane"}]})"),
                ::testing::ExitedWithCode(1), "");
    // Unknown named fab node.
    EXPECT_EXIT(parse_device(R"({"name": "x", "ics": [
                    {"name": "a", "kind": "logic", "area_mm2": 10,
                     "node_nm": 7, "fab_node": "6nm"}]})"),
                ::testing::ExitedWithCode(1), "");
}

TEST(DeviceJson, FileRoundTrip)
{
    const std::string path =
        ::testing::TempDir() + "/act_device_test.json";
    const DeviceRecord device =
        deviceFromJson(config::JsonValue::parse(kCustomPhone));
    saveDeviceFile(path, device);
    const DeviceRecord loaded = loadDeviceFile(path);
    EXPECT_EQ(loaded.name, "custom-phone");
    EXPECT_EQ(loaded.ics.size(), 4u);
    EXPECT_EXIT(loadDeviceFile("/nonexistent/device.json"),
                ::testing::ExitedWithCode(1), "");
}

TEST(Lifecycle, PhasesAnchorOnTheIcModel)
{
    const DeviceRecord device =
        deviceFromJson(config::JsonValue::parse(kCustomPhone));
    const core::FabParams fab;
    const auto estimate = core::estimateLifecycle(device, fab);
    const core::EmbodiedModel model(fab);

    EXPECT_DOUBLE_EQ(util::asGrams(estimate.ic_manufacturing),
                     util::asGrams(model.evaluate(device).total()));
    // ic_share = 0.5, so other manufacturing equals the IC slice.
    EXPECT_NEAR(util::asGrams(estimate.other_manufacturing),
                util::asGrams(estimate.ic_manufacturing), 1e-6);
    // Shares: production 0.8, use 0.15 => use / production = 0.1875.
    EXPECT_NEAR(util::asGrams(estimate.use) /
                    util::asGrams(estimate.manufacturing()),
                0.15 / 0.8, 1e-9);
    EXPECT_GT(estimate.manufacturingShare(), 0.7);
}

TEST(Lifecycle, GreenerFabShrinksTheWholeEstimate)
{
    const auto device =
        DeviceDatabase::instance().byNameOrDie("iPhone 11");
    const auto base =
        core::estimateLifecycle(device, core::FabParams{});
    const auto green = core::estimateLifecycle(
        device, core::FabParams::renewable());
    EXPECT_LT(util::asGrams(green.total()), util::asGrams(base.total()));
}

TEST(Lifecycle, RejectsDevicesWithoutBomOrShares)
{
    const core::FabParams fab;
    const auto no_bom =
        DeviceDatabase::instance().byNameOrDie("iPhone 3GS");
    EXPECT_EXIT(core::estimateLifecycle(no_bom, fab),
                ::testing::ExitedWithCode(1), "");

    DeviceRecord bad = deviceFromJson(
        config::JsonValue::parse(kCustomPhone));
    bad.lca.ic_share_of_production = 0.0;
    EXPECT_EXIT(core::estimateLifecycle(bad, fab),
                ::testing::ExitedWithCode(1), "");
}

} // namespace
} // namespace act::data
