/** @file Tests for the DVFS-under-carbon-metrics extension. */

#include <gtest/gtest.h>

#include "mobile/dvfs.h"

namespace act::mobile {
namespace {

const util::Duration kTask = util::milliseconds(100.0);

TEST(Dvfs, VoltageScalesLinearlyWithFrequency)
{
    DvfsParams params;
    EXPECT_DOUBLE_EQ(dvfsVoltage(params, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(dvfsVoltage(params, 0.5),
                     params.v_min_fraction +
                         (1.0 - params.v_min_fraction) * 0.5);
    EXPECT_EXIT(dvfsVoltage(params, 0.0), ::testing::ExitedWithCode(1),
                "");
    EXPECT_EXIT(dvfsVoltage(params, 1.1), ::testing::ExitedWithCode(1),
                "");
}

TEST(Dvfs, NominalEnergyMatchesPowerTimesTime)
{
    DvfsParams params;
    // At f = 1: E = P_nom * t_nom exactly.
    EXPECT_NEAR(util::asJoules(taskEnergy(params, 1.0, kTask)),
                util::asWatts(params.nominal_power) *
                    util::asSeconds(kTask),
                1e-9);
}

TEST(Dvfs, EnergyCurveIsUShaped)
{
    DvfsParams params;
    const double f_star = energyOptimalFrequency(params, kTask);
    EXPECT_GT(f_star, 0.2);
    EXPECT_LT(f_star, 0.95);
    // Energy rises on both sides of the optimum.
    const double e_star =
        util::asJoules(taskEnergy(params, f_star, kTask));
    EXPECT_GT(util::asJoules(taskEnergy(params, 0.1, kTask)), e_star);
    EXPECT_GT(util::asJoules(taskEnergy(params, 1.0, kTask)), e_star);
}

TEST(Dvfs, NoLeakageMeansSlowerIsAlwaysGreener)
{
    DvfsParams params;
    params.leakage_fraction = 0.0;
    // Without leakage, energy decreases monotonically with f, so the
    // energy optimum hits the search floor.
    EXPECT_LT(energyOptimalFrequency(params, kTask), 0.06);
}

TEST(Dvfs, CarbonOptimumAtOrAboveEnergyOptimum)
{
    // Charging embodied carbon for occupancy time always pushes
    // towards higher frequency.
    DvfsParams params;
    for (double ci : {820.0, 300.0, 100.0, 41.0}) {
        const auto use = core::OperationalParams::withIntensity(
            util::gramsPerKilowattHour(ci));
        EXPECT_GE(carbonOptimalFrequency(params, kTask, use),
                  energyOptimalFrequency(params, kTask) - 1e-6)
            << ci;
    }
}

TEST(Dvfs, GreenerGridsFavorRaceToIdle)
{
    DvfsParams params;
    double prev = 0.0;
    for (double ci : {820.0, 300.0, 41.0, 1.0}) {
        const auto use = core::OperationalParams::withIntensity(
            util::gramsPerKilowattHour(ci));
        const double f_star =
            carbonOptimalFrequency(params, kTask, use);
        EXPECT_GE(f_star, prev - 1e-6) << ci;
        prev = f_star;
    }
    // On a carbon-free grid only embodied occupancy matters: run flat
    // out.
    const auto free_use = core::OperationalParams::withIntensity(
        util::gramsPerKilowattHour(0.0));
    EXPECT_NEAR(carbonOptimalFrequency(params, kTask, free_use), 1.0,
                1e-3);
}

TEST(Dvfs, SweepIsConsistentWithPointEvaluation)
{
    DvfsParams params;
    const core::OperationalParams use;
    const auto sweep = dvfsSweep(params, kTask, use, 0.25, 16);
    ASSERT_EQ(sweep.size(), 16u);
    EXPECT_DOUBLE_EQ(sweep.front().frequency, 0.25);
    EXPECT_DOUBLE_EQ(sweep.back().frequency, 1.0);
    for (const auto &point : sweep) {
        const auto reference =
            evaluateFrequency(params, point.frequency, kTask, use);
        EXPECT_DOUBLE_EQ(util::asJoules(point.energy),
                         util::asJoules(reference.energy));
        EXPECT_NEAR(util::asSeconds(point.latency),
                    util::asSeconds(kTask) / point.frequency, 1e-12);
    }
}

TEST(Dvfs, FootprintCombinesOperationalAndOccupancy)
{
    DvfsParams params;
    const core::OperationalParams use;
    const auto point = evaluateFrequency(params, 0.5, kTask, use);
    // Embodied allocation = ECF * (t / LT).
    const double expected_embodied =
        util::asGrams(params.device_embodied) *
        util::asSeconds(point.latency) /
        util::asSeconds(params.device_lifetime);
    EXPECT_NEAR(util::asGrams(point.footprint.embodied_allocated),
                expected_embodied, 1e-12);
}

TEST(Dvfs, InvalidParamsAreFatal)
{
    DvfsParams params;
    params.leakage_fraction = 1.0;
    EXPECT_EXIT(taskEnergy(params, 0.5, kTask),
                ::testing::ExitedWithCode(1), "");
    params = DvfsParams{};
    params.v_min_fraction = 0.0;
    EXPECT_EXIT(taskEnergy(params, 0.5, kTask),
                ::testing::ExitedWithCode(1), "");
    params = DvfsParams{};
    const core::OperationalParams use;
    EXPECT_EXIT(dvfsSweep(params, kTask, use, 0.5, 1),
                ::testing::ExitedWithCode(1), "");
}

} // namespace
} // namespace act::mobile
