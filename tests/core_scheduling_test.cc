/**
 * @file
 * Tests for diurnal carbon-intensity profiles and carbon-aware
 * scheduling.
 */

#include <gtest/gtest.h>

#include "core/scheduling.h"

namespace act::core {
namespace {

using data::DiurnalProfile;
using util::gramsPerKilowattHour;

TEST(Profiles, FlatProfileIsConstant)
{
    const auto profile = DiurnalProfile::flat(gramsPerKilowattHour(300));
    for (std::size_t h = 0; h < DiurnalProfile::kHours; ++h)
        EXPECT_DOUBLE_EQ(profile.at(h).value(), 300.0);
    EXPECT_DOUBLE_EQ(profile.dailyAverage().value(), 300.0);
}

TEST(Profiles, SolarProfileAveragesToBlend)
{
    const auto base = gramsPerKilowattHour(583.0);
    for (double share : {0.0, 0.1, 0.25, 0.4}) {
        const auto profile = DiurnalProfile::solarGrid(base, share);
        EXPECT_NEAR(profile.dailyAverage().value(),
                    data::renewableBlend(base, share).value(), 0.5)
            << share;
    }
}

TEST(Profiles, WindProfileAveragesToBlend)
{
    const auto base = gramsPerKilowattHour(400.0);
    const auto profile = DiurnalProfile::windGrid(base, 0.3);
    const double expected =
        0.7 * 400.0 +
        0.3 * data::sourceIntensity(data::EnergySource::Wind).value();
    EXPECT_NEAR(profile.dailyAverage().value(), expected, 0.5);
}

TEST(Profiles, SolarDipsMidday)
{
    const auto profile = DiurnalProfile::solarGrid(
        gramsPerKilowattHour(583.0), 0.25);
    EXPECT_LT(profile.at(12).value(), profile.at(0).value());
    EXPECT_LT(profile.at(12).value(), profile.at(22).value());
    // Night hours carry no solar at all.
    EXPECT_DOUBLE_EQ(profile.at(0).value(), 583.0);
    EXPECT_DOUBLE_EQ(profile.at(23).value(), 583.0);
}

TEST(Profiles, HoursByIntensitySortsGreenestFirst)
{
    const auto profile = DiurnalProfile::solarGrid(
        gramsPerKilowattHour(583.0), 0.25);
    const auto order = profile.hoursByIntensity();
    for (std::size_t i = 1; i < order.size(); ++i) {
        EXPECT_LE(profile.at(order[i - 1]).value(),
                  profile.at(order[i]).value());
    }
    // The greenest hour is midday.
    EXPECT_EQ(order.front(), 12u);
}

TEST(Profiles, OutOfRangeSharesAreFatal)
{
    EXPECT_EXIT(DiurnalProfile::solarGrid(gramsPerKilowattHour(583.0),
                                          0.6),
                ::testing::ExitedWithCode(1), "");
    EXPECT_EXIT(DiurnalProfile::windGrid(gramsPerKilowattHour(583.0),
                                         -0.1),
                ::testing::ExitedWithCode(1), "");
}

DailyLoad
referenceLoad()
{
    DailyLoad load;
    load.baseline = util::watts(100.0);
    load.deferrable_energy = util::kilowattHours(2.0);
    load.deferrable_capacity = util::watts(500.0);
    return load;
}

TEST(Scheduling, UniformSpreadsEvenly)
{
    const auto profile = DiurnalProfile::flat(gramsPerKilowattHour(300));
    const auto result = scheduleUniform(referenceLoad(), profile);
    for (const auto &energy : result.placement) {
        EXPECT_NEAR(util::asKilowattHours(energy), 2.0 / 24.0, 1e-12);
    }
    // 2.4 kWh baseline + 2 kWh deferrable at 300 g/kWh.
    EXPECT_NEAR(util::asGrams(result.total()), (2.4 + 2.0) * 300.0,
                1e-6);
}

TEST(Scheduling, FlatProfileOffersNoSaving)
{
    const auto profile = DiurnalProfile::flat(gramsPerKilowattHour(300));
    EXPECT_NEAR(carbonAwareSaving(referenceLoad(), profile), 1.0, 1e-9);
}

TEST(Scheduling, CarbonAwarePlacesEnergyInGreenHours)
{
    const auto profile = DiurnalProfile::solarGrid(
        gramsPerKilowattHour(583.0), 0.25);
    const auto result = scheduleCarbonAware(referenceLoad(), profile);

    // All deferrable energy lands somewhere.
    util::Energy placed{};
    for (const auto &energy : result.placement)
        placed += energy;
    EXPECT_NEAR(util::asKilowattHours(placed), 2.0, 1e-9);

    // Midday (greenest) saturates before night hours get anything.
    EXPECT_NEAR(util::asKilowattHours(result.placement[12]), 0.5,
                1e-9);  // 500 W x 1 h
    EXPECT_DOUBLE_EQ(util::asKilowattHours(result.placement[0]), 0.0);

    // And it beats the uniform schedule.
    const auto uniform = scheduleUniform(referenceLoad(), profile);
    EXPECT_LT(util::asGrams(result.deferrable_footprint),
              util::asGrams(uniform.deferrable_footprint));
    EXPECT_DOUBLE_EQ(util::asGrams(result.baseline_footprint),
                     util::asGrams(uniform.baseline_footprint));
}

TEST(Scheduling, SavingGrowsWithRenewableShare)
{
    const auto base = gramsPerKilowattHour(583.0);
    double prev = 1.0;
    for (double share : {0.1, 0.2, 0.3, 0.4}) {
        const double saving = carbonAwareSaving(
            referenceLoad(), DiurnalProfile::solarGrid(base, share));
        EXPECT_GT(saving, prev) << share;
        prev = saving;
    }
}

TEST(Scheduling, CapacityConstraintEnforced)
{
    DailyLoad load = referenceLoad();
    load.deferrable_energy = util::kilowattHours(20.0);
    load.deferrable_capacity = util::watts(500.0);  // max 12 kWh/day
    const auto profile = DiurnalProfile::flat(gramsPerKilowattHour(300));
    EXPECT_EXIT(scheduleCarbonAware(load, profile),
                ::testing::ExitedWithCode(1), "");
}

TEST(Scheduling, TightCapacityLimitsTheSaving)
{
    // With capacity exactly equal to uniform demand, the carbon-aware
    // schedule has no freedom and matches uniform.
    DailyLoad load = referenceLoad();
    load.deferrable_capacity =
        util::watts(1000.0 * 2.0 / 24.0);  // 2 kWh over 24 h exactly
    const auto profile = DiurnalProfile::solarGrid(
        gramsPerKilowattHour(583.0), 0.25);
    EXPECT_NEAR(carbonAwareSaving(load, profile), 1.0, 1e-9);
}

} // namespace
} // namespace act::core
