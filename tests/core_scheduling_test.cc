/**
 * @file
 * Tests for diurnal carbon-intensity profiles and carbon-aware
 * scheduling.
 */

#include <gtest/gtest.h>

#include "core/scheduling.h"

namespace act::core {
namespace {

using data::DiurnalProfile;
using util::gramsPerKilowattHour;

TEST(Profiles, FlatProfileIsConstant)
{
    const auto profile = DiurnalProfile::flat(gramsPerKilowattHour(300));
    for (std::size_t h = 0; h < DiurnalProfile::kHours; ++h)
        EXPECT_DOUBLE_EQ(profile.at(h).value(), 300.0);
    EXPECT_DOUBLE_EQ(profile.dailyAverage().value(), 300.0);
}

TEST(Profiles, SolarProfileAveragesToBlend)
{
    const auto base = gramsPerKilowattHour(583.0);
    for (double share : {0.0, 0.1, 0.25, 0.4}) {
        const auto profile = DiurnalProfile::solarGrid(base, share);
        EXPECT_NEAR(profile.dailyAverage().value(),
                    data::renewableBlend(base, share).value(), 0.5)
            << share;
    }
}

TEST(Profiles, WindProfileAveragesToBlend)
{
    const auto base = gramsPerKilowattHour(400.0);
    const auto profile = DiurnalProfile::windGrid(base, 0.3);
    const double expected =
        0.7 * 400.0 +
        0.3 * data::sourceIntensity(data::EnergySource::Wind).value();
    EXPECT_NEAR(profile.dailyAverage().value(), expected, 0.5);
}

TEST(Profiles, SolarDipsMidday)
{
    const auto profile = DiurnalProfile::solarGrid(
        gramsPerKilowattHour(583.0), 0.25);
    EXPECT_LT(profile.at(12).value(), profile.at(0).value());
    EXPECT_LT(profile.at(12).value(), profile.at(22).value());
    // Night hours carry no solar at all.
    EXPECT_DOUBLE_EQ(profile.at(0).value(), 583.0);
    EXPECT_DOUBLE_EQ(profile.at(23).value(), 583.0);
}

TEST(Profiles, HoursByIntensitySortsGreenestFirst)
{
    const auto profile = DiurnalProfile::solarGrid(
        gramsPerKilowattHour(583.0), 0.25);
    const auto order = profile.hoursByIntensity();
    for (std::size_t i = 1; i < order.size(); ++i) {
        EXPECT_LE(profile.at(order[i - 1]).value(),
                  profile.at(order[i]).value());
    }
    // The greenest hour is midday.
    EXPECT_EQ(order.front(), 12u);
}

TEST(Profiles, OutOfRangeSharesAreFatal)
{
    EXPECT_EXIT(DiurnalProfile::solarGrid(gramsPerKilowattHour(583.0),
                                          0.6),
                ::testing::ExitedWithCode(1), "");
    EXPECT_EXIT(DiurnalProfile::windGrid(gramsPerKilowattHour(583.0),
                                         -0.1),
                ::testing::ExitedWithCode(1), "");
}

DailyLoad
referenceLoad()
{
    DailyLoad load;
    load.baseline = util::watts(100.0);
    load.deferrable_energy = util::kilowattHours(2.0);
    load.deferrable_capacity = util::watts(500.0);
    return load;
}

TEST(Scheduling, UniformSpreadsEvenly)
{
    const auto profile = DiurnalProfile::flat(gramsPerKilowattHour(300));
    const auto result = scheduleUniform(referenceLoad(), profile);
    for (const auto &energy : result.placement) {
        EXPECT_NEAR(util::asKilowattHours(energy), 2.0 / 24.0, 1e-12);
    }
    // 2.4 kWh baseline + 2 kWh deferrable at 300 g/kWh.
    EXPECT_NEAR(util::asGrams(result.total()), (2.4 + 2.0) * 300.0,
                1e-6);
}

TEST(Scheduling, FlatProfileOffersNoSaving)
{
    const auto profile = DiurnalProfile::flat(gramsPerKilowattHour(300));
    EXPECT_NEAR(carbonAwareSaving(referenceLoad(), profile), 1.0, 1e-9);
}

TEST(Scheduling, CarbonAwarePlacesEnergyInGreenHours)
{
    const auto profile = DiurnalProfile::solarGrid(
        gramsPerKilowattHour(583.0), 0.25);
    const auto result = scheduleCarbonAware(referenceLoad(), profile);

    // All deferrable energy lands somewhere.
    util::Energy placed{};
    for (const auto &energy : result.placement)
        placed += energy;
    EXPECT_NEAR(util::asKilowattHours(placed), 2.0, 1e-9);

    // Midday (greenest) saturates before night hours get anything.
    EXPECT_NEAR(util::asKilowattHours(result.placement[12]), 0.5,
                1e-9);  // 500 W x 1 h
    EXPECT_DOUBLE_EQ(util::asKilowattHours(result.placement[0]), 0.0);

    // And it beats the uniform schedule.
    const auto uniform = scheduleUniform(referenceLoad(), profile);
    EXPECT_LT(util::asGrams(result.deferrable_footprint),
              util::asGrams(uniform.deferrable_footprint));
    EXPECT_DOUBLE_EQ(util::asGrams(result.baseline_footprint),
                     util::asGrams(uniform.baseline_footprint));
}

TEST(Scheduling, SavingGrowsWithRenewableShare)
{
    const auto base = gramsPerKilowattHour(583.0);
    double prev = 1.0;
    for (double share : {0.1, 0.2, 0.3, 0.4}) {
        const double saving = carbonAwareSaving(
            referenceLoad(), DiurnalProfile::solarGrid(base, share));
        EXPECT_GT(saving, prev) << share;
        prev = saving;
    }
}

TEST(Scheduling, CapacityConstraintEnforced)
{
    DailyLoad load = referenceLoad();
    load.deferrable_energy = util::kilowattHours(20.0);
    load.deferrable_capacity = util::watts(500.0);  // max 12 kWh/day
    const auto profile = DiurnalProfile::flat(gramsPerKilowattHour(300));
    EXPECT_EXIT(scheduleCarbonAware(load, profile),
                ::testing::ExitedWithCode(1), "");
}

TEST(Scheduling, TightCapacityLimitsTheSaving)
{
    // With capacity exactly equal to uniform demand, the carbon-aware
    // schedule has no freedom and matches uniform.
    DailyLoad load = referenceLoad();
    load.deferrable_capacity =
        util::watts(1000.0 * 2.0 / 24.0);  // 2 kWh over 24 h exactly
    const auto profile = DiurnalProfile::solarGrid(
        gramsPerKilowattHour(583.0), 0.25);
    EXPECT_NEAR(carbonAwareSaving(load, profile), 1.0, 1e-9);
}

// ---------------------------------------------------------------------
// Policy API: the legacy 24-hour entry points are wrappers over
// schedule(), and the new policies behave sanely.
// ---------------------------------------------------------------------

TEST(Policies, NamesRoundTrip)
{
    EXPECT_EQ(policyByName("uniform").kind, DeferralPolicy::Uniform);
    EXPECT_EQ(policyByName("greedy").kind,
              DeferralPolicy::GreedyGreenest);
    EXPECT_EQ(policyByName("deadline").kind,
              DeferralPolicy::DeadlineBounded);
    EXPECT_GT(policyByName("deadline").deadline_samples, 0u);
    EXPECT_EQ(policyByName("migrate").kind,
              DeferralPolicy::GreenestRegion);
    EXPECT_EQ(policyName(DeferralPolicy::GreedyGreenest), "greedy");
}

TEST(Policies, ScheduleMatchesLegacyWrappersBitwise)
{
    const auto profile = DiurnalProfile::solarGrid(
        gramsPerKilowattHour(583.0), 0.25);
    const auto legacy_uniform = scheduleUniform(referenceLoad(), profile);
    const auto legacy_aware =
        scheduleCarbonAware(referenceLoad(), profile);
    const auto uniform = schedule(referenceLoad(), profile.series(),
                                  policyByName("uniform"));
    const auto aware = schedule(referenceLoad(), profile.series(),
                                policyByName("greedy"));

    ASSERT_EQ(uniform.placement.size(), DiurnalProfile::kHours);
    for (std::size_t h = 0; h < DiurnalProfile::kHours; ++h) {
        EXPECT_EQ(util::asKilowattHours(uniform.placement[h]),
                  util::asKilowattHours(legacy_uniform.placement[h]));
        EXPECT_EQ(util::asKilowattHours(aware.placement[h]),
                  util::asKilowattHours(legacy_aware.placement[h]));
    }
    EXPECT_EQ(util::asGrams(uniform.total()),
              util::asGrams(legacy_uniform.total()));
    EXPECT_EQ(util::asGrams(aware.total()),
              util::asGrams(legacy_aware.total()));
}

TEST(Policies, DeadlineWindowInterpolatesUniformAndGreedy)
{
    const auto series = data::IntensitySeries::solarDay(
        gramsPerKilowattHour(583.0), 0.25);
    const auto uniform = schedule(referenceLoad(), series,
                                  policyByName("uniform"));
    const auto greedy =
        schedule(referenceLoad(), series, policyByName("greedy"));
    const auto deadline = schedule(
        referenceLoad(), series,
        {DeferralPolicy::DeadlineBounded, 6});
    // Bounded freedom lands between carbon-oblivious and unconstrained.
    EXPECT_LE(util::asGrams(deadline.deferrable_footprint),
              util::asGrams(uniform.deferrable_footprint));
    EXPECT_GE(util::asGrams(deadline.deferrable_footprint),
              util::asGrams(greedy.deferrable_footprint));
    // A whole-series window IS greedy.
    const auto wide = schedule(
        referenceLoad(), series,
        {DeferralPolicy::DeadlineBounded, series.size()});
    EXPECT_EQ(util::asGrams(wide.deferrable_footprint),
              util::asGrams(greedy.deferrable_footprint));
    // Every window conserves energy overall.
    util::Energy placed{};
    for (const auto &energy : deadline.placement)
        placed += energy;
    EXPECT_NEAR(util::asKilowattHours(placed), 2.0, 1e-9);
}

TEST(Policies, CrossRegionPrefersTheGreenerGrid)
{
    const std::vector<data::IntensitySeries> regions = {
        data::IntensitySeries::flat(gramsPerKilowattHour(583.0)),
        data::IntensitySeries::flat(gramsPerKilowattHour(28.0)),
    };
    const auto result = scheduleAcrossRegions(referenceLoad(), regions);
    // All deferrable energy migrates to the clean region...
    util::Energy home{}, away{};
    for (const auto &energy : result.placement[0])
        home += energy;
    for (const auto &energy : result.placement[1])
        away += energy;
    EXPECT_DOUBLE_EQ(util::asKilowattHours(home), 0.0);
    EXPECT_NEAR(util::asKilowattHours(away), 2.0, 1e-9);
    // ...while the baseline stays home.
    EXPECT_NEAR(util::asGrams(result.baseline_footprint),
                2.4 * 583.0, 1e-6);
}

TEST(Policies, SeriesScheduleScalesWithSpan)
{
    // A two-day series owes two days of deferrable energy.
    const auto day = data::IntensitySeries::solarDay(
        gramsPerKilowattHour(583.0), 0.25);
    const auto two_days = data::IntensitySeries::seasonal(day, 2, 0.0);
    const auto result =
        schedule(referenceLoad(), two_days, policyByName("greedy"));
    util::Energy placed{};
    for (const auto &energy : result.placement)
        placed += energy;
    EXPECT_NEAR(util::asKilowattHours(placed), 4.0, 1e-9);
}

// ---------------------------------------------------------------------
// Input validation
// ---------------------------------------------------------------------

class SchedulingDeathTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    }
};

TEST_F(SchedulingDeathTest, NegativeEnergyIsFatal)
{
    DailyLoad load = referenceLoad();
    load.deferrable_energy = util::kilowattHours(-1.0);
    const auto profile = DiurnalProfile::flat(gramsPerKilowattHour(300));
    EXPECT_EXIT(scheduleUniform(load, profile),
                ::testing::ExitedWithCode(1), "non-negative");
}

TEST_F(SchedulingDeathTest, NanEnergyIsFatal)
{
    DailyLoad load = referenceLoad();
    load.deferrable_energy =
        util::kilowattHours(std::numeric_limits<double>::quiet_NaN());
    const auto profile = DiurnalProfile::flat(gramsPerKilowattHour(300));
    EXPECT_EXIT(scheduleUniform(load, profile),
                ::testing::ExitedWithCode(1), "must be finite");
}

TEST_F(SchedulingDeathTest, NanBaselineIsFatal)
{
    DailyLoad load = referenceLoad();
    load.baseline =
        util::watts(std::numeric_limits<double>::quiet_NaN());
    const auto profile = DiurnalProfile::flat(gramsPerKilowattHour(300));
    EXPECT_EXIT(scheduleCarbonAware(load, profile),
                ::testing::ExitedWithCode(1), "must be finite");
}

TEST_F(SchedulingDeathTest, ZeroCapacityWithEnergyIsFatal)
{
    DailyLoad load = referenceLoad();
    load.deferrable_capacity = util::watts(0.0);
    const auto profile = DiurnalProfile::flat(gramsPerKilowattHour(300));
    EXPECT_EXIT(scheduleUniform(load, profile),
                ::testing::ExitedWithCode(1), "capacity is zero");
}

TEST_F(SchedulingDeathTest, EnergyBeyondDailyCapacityIsFatal)
{
    DailyLoad load = referenceLoad();
    load.deferrable_energy = util::kilowattHours(20.0);  // max 12 kWh
    const auto series = data::IntensitySeries::flat(
        gramsPerKilowattHour(300.0));
    EXPECT_EXIT(schedule(load, series, policyByName("greedy")),
                ::testing::ExitedWithCode(1), "exceeds the daily");
}

TEST_F(SchedulingDeathTest, ZeroDeadlineWindowIsFatal)
{
    const auto series = data::IntensitySeries::flat(
        gramsPerKilowattHour(300.0));
    EXPECT_EXIT(schedule(referenceLoad(), series,
                         {DeferralPolicy::DeadlineBounded, 0}),
                ::testing::ExitedWithCode(1), "deadline window");
}

TEST_F(SchedulingDeathTest, GreenestRegionNeedsTheMultiRegionApi)
{
    const auto series = data::IntensitySeries::flat(
        gramsPerKilowattHour(300.0));
    EXPECT_EXIT(schedule(referenceLoad(), series,
                         {DeferralPolicy::GreenestRegion, 0}),
                ::testing::ExitedWithCode(1), "scheduleAcrossRegions");
}

TEST_F(SchedulingDeathTest, MismatchedRegionSeriesAreFatal)
{
    const std::vector<data::IntensitySeries> regions = {
        data::IntensitySeries::flat(gramsPerKilowattHour(583.0), 24),
        data::IntensitySeries::flat(gramsPerKilowattHour(28.0), 48),
    };
    EXPECT_EXIT(scheduleAcrossRegions(referenceLoad(), regions),
                ::testing::ExitedWithCode(1), "share length");
}

} // namespace
} // namespace act::core
