/**
 * @file
 * Sustainable storage-fleet planning: choose between HDD and SSD tiers
 * for a 1 PB archive and pick the SSD over-provisioning level for a
 * 5-year service commitment -- combining the Table 9-11 databases, the
 * Meza et al. lifetime model, and the FTL simulator.
 */

#include <iostream>

#include "core/operational.h"
#include "data/memory_db.h"
#include "ssd/ftl_sim.h"
#include "ssd/lifetime.h"
#include "ssd/wa_model.h"
#include "util/strings.h"
#include "util/table.h"

int
main()
{
    using namespace act;

    const util::Capacity fleet = util::terabytes(1000.0);  // 1 PB
    std::cout << "Planning a 1 PB storage fleet\n\n";

    // --- Tier comparison: embodied carbon per technology -------------
    util::Table tiers({"Technology", "Class", "Embodied (t CO2 / PB)"});
    for (const char *name :
         {"10nm NAND", "1z NAND TLC", "V3 NAND TLC", "Exosx16",
          "Exosx12", "BarraCuda"}) {
        const auto record = data::storageOrDie(name);
        tiers.addRow(
            {record.name,
             record.storage_class == data::StorageClass::Ssd ? "SSD"
                                                             : "HDD",
             util::formatSig(
                 util::asGrams(record.cps * fleet) / 1e6, 3)});
    }
    std::cout << tiers.render();
    std::cout << "Enterprise HDDs carry 3-10x less embodied carbon per "
                 "byte than NAND; flash must earn its footprint through "
                 "energy and performance.\n\n";

    // --- SSD tier: over-provisioning for a 5-year commitment ---------
    ssd::ProvisioningStudyParams params;
    params.user_capacity = util::terabytes(3.84);
    params.cps = data::storageOrDie("1z NAND TLC").cps;
    params.service_period = util::years(5.0);
    params.whole_devices = true;
    params.reliability.dwpd = 1.3;

    const double pf_needed = ssd::minimumPfForService(params);
    std::cout << "Per-drive plan (3.84 TB user capacity, 5-year "
                 "commitment):\n";
    std::cout << "  minimum over-provisioning: "
              << util::formatFixed(pf_needed * 100.0, 1) << "%\n";
    std::cout << "  write amplification there: "
              << util::formatSig(
                     ssd::analyticalWriteAmplification(pf_needed), 3)
              << " (analytical)\n";

    // Validate the WA assumption with the trace-driven FTL simulator.
    ssd::FtlConfig ftl;
    ftl.num_blocks = 192;
    ftl.pages_per_block = 32;
    ftl.over_provision = pf_needed;
    ftl.user_writes = 150'000;
    const auto stats = ssd::FtlSimulator(ftl).run();
    std::cout << "  write amplification (FTL simulation): "
              << util::formatSig(stats.writeAmplification(), 3) << " ("
              << stats.gc_invocations << " GC passes, "
              << stats.pages_relocated << " relocations)\n\n";

    // --- Sweep: carbon cost of reliability margins -------------------
    util::Table sweep({"PF", "Lifetime (y)", "Drives over 5y",
                       "Embodied (kg/drive-slot)"});
    for (double pf : {0.07, 0.15, 0.25, 0.35, 0.45}) {
        const auto point = ssd::evaluateOverProvision(pf, params);
        sweep.addRow(util::formatFixed(pf * 100.0, 0) + "%",
                     {point.lifetime_years, point.devices,
                      util::asKilograms(point.effective_embodied)});
    }
    std::cout << sweep.render();
    std::cout << "Under-provisioned drives wear out and must be "
                 "replaced; over-provisioned drives ship spare silicon "
                 "that is never needed. Right-sizing reliability is a "
                 "carbon decision.\n";
    return 0;
}
