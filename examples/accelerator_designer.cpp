/**
 * @file
 * Carbon-aware accelerator design: size an NVDLA-class NPU for an
 * always-on AR-glasses vision pipeline with a 60 FPS QoS target,
 * comparing the performance-first, energy-first, and carbon-first
 * answers at two process nodes -- the Section 7 methodology applied to
 * a new product scenario.
 */

#include <iostream>

#include "accel/design_space.h"
#include "dse/pareto.h"
#include "dse/scoreboard.h"
#include "util/strings.h"
#include "util/table.h"

int
main()
{
    using namespace act;

    const accel::NpuModel model;
    const core::FabParams fab;
    constexpr double kQosFps = 60.0;

    std::cout << "Sizing an NPU for a " << kQosFps
              << " FPS AR vision pipeline\n\n";

    for (double node_nm : {16.0, 28.0}) {
        std::cout << "=== " << util::formatFixed(node_nm, 0)
                  << " nm ===\n";
        const auto entries =
            accel::sweepDesignSpace(model, node_nm, fab);

        util::Table table({"MACs", "FPS", "Energy (mJ)", "Area (mm2)",
                           "Embodied (g)", "meets QoS"});
        for (const auto &entry : entries) {
            table.addRow(
                {std::to_string(entry.evaluation.config.mac_count),
                 util::formatSig(entry.evaluation.frames_per_second, 4),
                 util::formatSig(util::asMillijoules(
                     entry.evaluation.energy_per_frame), 4),
                 util::formatSig(util::asSquareMillimeters(
                     entry.evaluation.area), 3),
                 util::formatSig(util::asGrams(entry.embodied), 3),
                 entry.evaluation.frames_per_second >= kQosFps ? "yes"
                                                               : "no"});
        }
        std::cout << table.render();

        const accel::QosStudy study =
            accel::qosStudy(model, node_nm, fab, kQosFps);
        if (study.carbon_optimal) {
            std::cout << "carbon-optimal @ " << kQosFps << " FPS: "
                      << study.carbon_optimal->evaluation.config
                             .mac_count
                      << " MACs ("
                      << util::formatSig(util::asGrams(
                             study.carbon_optimal->embodied), 3)
                      << " g CO2); performance-first costs "
                      << util::formatSig(study.performanceOverhead(), 3)
                      << "x more embodied carbon\n";
        } else {
            std::cout << "no configuration meets " << kQosFps
                      << " FPS at this node\n";
        }

        // The (delay, carbon) Pareto frontier.
        std::vector<dse::Point2D> points;
        for (const auto &entry : entries) {
            points.push_back(
                {entry.design_point.name,
                 util::asSeconds(entry.design_point.delay),
                 util::asGrams(entry.embodied)});
        }
        std::cout << "(delay, embodied-carbon) Pareto frontier:";
        for (std::size_t index : dse::paretoFrontier(points))
            std::cout << ' ' << points[index].name << ';';
        std::cout << "\n\n";
    }

    std::cout << "Lesson: the QoS-lean configuration, not the fastest "
                 "one, minimizes embodied carbon -- and a newer node "
                 "is not automatically greener (Jevons paradox).\n";
    return 0;
}
