/**
 * @file
 * Config-driven scenario exploration: load a JSON scenario (fab and
 * use-phase conditions), evaluate a device's embodied footprint under
 * it, and run the yield / abatement / fab-CI sensitivity sweeps called
 * out in DESIGN.md.
 *
 * Usage:
 *   ./scenario_explorer [scenario.json] [device name]
 * With no arguments it writes and uses a default scenario for the
 * iPhone 11.
 */

#include <iostream>

#include "core/embodied.h"
#include "core/model_config.h"
#include "util/strings.h"
#include "util/table.h"

int
main(int argc, char **argv)
{
    using namespace act;

    core::Scenario scenario;
    if (argc > 1) {
        scenario = core::loadScenario(argv[1]);
        std::cout << "loaded scenario from " << argv[1] << "\n";
    } else {
        const std::string path = "act_scenario.json";
        core::saveScenario(path, scenario);
        std::cout << "wrote default scenario to " << path
                  << " (edit and re-run with it as an argument)\n";
    }
    const std::string device_name = argc > 2 ? argv[2] : "iPhone 11";
    const auto device =
        data::DeviceDatabase::instance().byNameOrDie(device_name);

    std::cout << "scenario: CI_fab="
              << util::formatSig(scenario.fab.ci_fab.value(), 4)
              << " g/kWh, abatement="
              << util::formatSig(scenario.fab.abatement * 100.0, 3)
              << "%, yield="
              << util::formatSig(scenario.fab.yield, 3) << "\n\n";

    const core::EmbodiedModel model(scenario.fab);
    const auto footprint = model.evaluate(device);
    util::Table components({"IC", "kg CO2"});
    for (const auto &component : footprint.components)
        components.addRow(component.name,
                          {util::asKilograms(component.embodied)});
    components.addSeparator();
    components.addRow("packaging",
                      {util::asKilograms(footprint.packaging)});
    components.addRow("TOTAL", {util::asKilograms(footprint.total())});
    std::cout << device.name << " embodied footprint:\n"
              << components.render() << "\n";

    // --- Sensitivity sweeps ------------------------------------------
    const auto total_at = [&](core::FabParams fab) {
        return util::asKilograms(
            core::EmbodiedModel(fab).evaluate(device).total());
    };

    util::Table yields({"Yield", "Total (kg)", "vs baseline"});
    const double baseline = util::asKilograms(footprint.total());
    for (double yield : {0.5, 0.7, 0.875, 0.95, 1.0}) {
        core::FabParams fab = scenario.fab;
        fab.yield = yield;
        const double total = total_at(fab);
        yields.addRow(util::formatSig(yield, 3),
                      {total, total / baseline});
    }
    std::cout << "yield sensitivity:\n" << yields.render() << "\n";

    util::Table abatement({"Gas abatement", "Total (kg)"});
    for (double a : {0.90, 0.95, 0.97, 0.99}) {
        core::FabParams fab = scenario.fab;
        fab.abatement = a;
        abatement.addRow(util::formatFixed(a * 100.0, 0) + "%",
                         {total_at(fab)});
    }
    std::cout << "abatement sensitivity:\n" << abatement.render() << "\n";

    util::Table ci({"Fab energy", "Total (kg)"});
    for (data::EnergySource source :
         {data::EnergySource::Coal, data::EnergySource::Gas,
          data::EnergySource::Solar, data::EnergySource::Wind}) {
        ci.addRow(std::string(data::sourceName(source)),
                  {total_at(core::FabParams::withIntensity(
                      data::sourceIntensity(source)))});
    }
    std::cout << "fab energy-source sensitivity:\n" << ci.render();
    return 0;
}
