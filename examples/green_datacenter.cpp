/**
 * @file
 * Green data-center planning: combine the server accounting, diurnal
 * carbon-intensity, carbon-aware scheduling, and refresh-interval
 * models into one operator's decision sheet -- which grid, which
 * schedule, and how often to replace hardware.
 */

#include <iostream>

#include "core/scheduling.h"
#include "server/datacenter.h"
#include "util/strings.h"
#include "util/table.h"

int
main()
{
    using namespace act;

    const core::FabParams fab;
    const server::ServerPlatform platform =
        server::dellR740Platform(fab);
    std::cout << "Planning around a " << platform.name
              << "-class fleet (embodied "
              << util::formatSig(util::asKilograms(platform.embodied), 4)
              << " kg CO2/server)\n\n";

    // --- Decision 1: site selection ----------------------------------
    util::Table sites({"Region", "Annual CF (t/server)",
                       "embodied share"});
    for (data::Region region :
         {data::Region::India, data::Region::UnitedStates,
          data::Region::Europe, data::Region::Brazil,
          data::Region::Iceland}) {
        server::DatacenterParams dc;
        dc.grid = core::OperationalParams::forRegion(region);
        const auto annual = server::annualFootprint(platform, dc);
        sites.addRow(std::string(data::regionName(region)),
                     {util::asGrams(annual.total()) / 1e6,
                      annual.embodiedShare()});
    }
    std::cout << "1. Site selection (PUE 1.2, 50% utilization):\n"
              << sites.render() << "\n";

    // --- Decision 2: schedule deferrable batch work -------------------
    core::DailyLoad load;
    load.baseline = util::watts(310.0);      // interactive tier
    load.deferrable_energy = util::kilowattHours(3.0);  // nightly batch
    load.deferrable_capacity = util::watts(500.0);
    const auto profile = data::DiurnalProfile::solarGrid(
        data::regionIntensity(data::Region::UnitedStates), 0.3);
    const auto uniform = core::scheduleUniform(load, profile);
    const auto aware = core::scheduleCarbonAware(load, profile);
    std::cout << "2. Batch scheduling on a 30%-solar grid:\n"
              << "   uniform schedule:      "
              << util::formatSig(util::asGrams(uniform.total()), 4)
              << " g CO2/day\n"
              << "   carbon-aware schedule: "
              << util::formatSig(util::asGrams(aware.total()), 4)
              << " g CO2/day ("
              << util::formatSig(core::carbonAwareSaving(load, profile),
                                 3)
              << "x saving on the deferrable tier)\n\n";

    // --- Decision 3: refresh cadence ----------------------------------
    util::Table refresh({"Grid", "Optimal refresh (years)",
                         "Footprint vs 3y refresh"});
    for (data::EnergySource source :
         {data::EnergySource::Coal, data::EnergySource::Gas,
          data::EnergySource::Solar, data::EnergySource::Wind}) {
        server::DatacenterParams dc;
        dc.grid = core::OperationalParams::forSource(source);
        const auto sweep = server::refreshSweep(platform, dc);
        const std::size_t best = core::optimalReplacementIndex(sweep);
        refresh.addRow(std::string(data::sourceName(source)),
                       {sweep[best].lifetime_years,
                        util::asGrams(sweep[best].total()) /
                            util::asGrams(sweep[2].total())});
    }
    std::cout << "3. Refresh cadence (12-year horizon, 1.12x/yr server "
                 "efficiency growth):\n"
              << refresh.render() << "\n";

    std::cout << "Takeaway: on a clean grid the data center's carbon "
                 "problem becomes a manufacturing problem -- embodied "
                 "share rises, refresh cycles should lengthen, and "
                 "procurement (fab carbon) becomes the lever that "
                 "matters.\n";
    return 0;
}
