/**
 * @file
 * Quickstart: estimate the end-to-end carbon footprint of running a
 * workload on a phone-class platform with the ACT model (Eq. 1), and
 * see how the answer moves with a greener fab or a greener grid.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <iostream>

#include "core/embodied.h"
#include "core/footprint.h"
#include "core/metrics.h"
#include "core/operational.h"
#include "data/memory_db.h"
#include "util/strings.h"
#include "util/table.h"

int
main()
{
    using namespace act;

    // --- 1. Describe the hardware -----------------------------------
    // A 7 nm, 90 mm2 SoC with 8 GB of LPDDR4 and 128 GB of NAND.
    const util::Area soc_area = util::squareMillimeters(90.0);
    const double soc_node_nm = 7.0;
    const util::Capacity dram = util::gigabytes(8.0);
    const util::Capacity nand = util::gigabytes(128.0);

    // --- 2. Pick fab and use-phase conditions -----------------------
    // Defaults reproduce the paper: a fab on the Taiwan grid with 25%
    // renewable procurement; use phase at the US-average 300 g/kWh.
    const core::FabParams fab;
    const core::OperationalParams use;

    // --- 3. Embodied carbon (Eqs. 3-8) ------------------------------
    const util::Mass embodied =
        core::logicEmbodied(soc_area, soc_node_nm, fab) +
        core::storageEmbodied(dram, data::defaultDram().cps) +
        core::storageEmbodied(nand, data::defaultSsd().cps) +
        core::packagingEmbodied(3);

    // --- 4. Operational carbon (Eq. 2) ------------------------------
    // One hour of 2 W usage per day over a 3-year life.
    const util::Duration lifetime = util::years(3.0);
    const util::Duration active_time =
        util::hours(1.0) * (3.0 * util::kDaysPerYear);
    const util::Mass operational = core::operationalFootprint(
        util::watts(2.0) * active_time, use);

    // --- 5. Combine (Eq. 1) ------------------------------------------
    // Charge the embodied footprint in proportion to active time.
    const core::CarbonFootprint footprint = core::combineFootprint(
        operational, embodied, active_time, lifetime);

    util::Table table({"Quantity", "kg CO2"});
    table.addRow("embodied (full device)",
                 {util::asKilograms(embodied)});
    table.addRow("operational (3 years)",
                 {util::asKilograms(operational)});
    table.addRow("embodied allocated to the workload",
                 {util::asKilograms(footprint.embodied_allocated)});
    table.addRow("total workload footprint (Eq. 1)",
                 {util::asKilograms(footprint.total())});
    std::cout << table.render();
    std::cout << "embodied share: "
              << util::formatFixed(footprint.embodiedShare() * 100.0, 1)
              << "%\n\n";

    // --- 6. What-if: greener fab vs greener grid --------------------
    const util::Mass green_fab_embodied =
        core::logicEmbodied(soc_area, soc_node_nm,
                            core::FabParams::renewable()) +
        core::storageEmbodied(dram, data::defaultDram().cps) +
        core::storageEmbodied(nand, data::defaultSsd().cps) +
        core::packagingEmbodied(3);
    const util::Mass green_grid_operational =
        core::operationalFootprint(
            util::watts(2.0) * active_time,
            core::OperationalParams::forSource(
                data::EnergySource::Solar));

    util::Table whatif({"Scenario", "kg CO2 (Eq. 1)"});
    whatif.addRow("baseline", {util::asKilograms(footprint.total())});
    whatif.addRow(
        "solar-powered fab",
        {util::asKilograms(core::combineFootprint(
                               operational, green_fab_embodied,
                               active_time, lifetime)
                               .total())});
    whatif.addRow(
        "solar-powered use phase",
        {util::asKilograms(core::combineFootprint(
                               green_grid_operational, embodied,
                               active_time, lifetime)
                               .total())});
    std::cout << whatif.render();
    std::cout << "With only one active hour per day, the workload's "
                 "footprint is use-dominated and a green grid helps "
                 "most; charged over the whole device life "
                 "(T = LT), the embodied term and hence the fab "
                 "dominates:\n";

    const core::CarbonFootprint whole_life =
        core::lifetimeFootprint(operational, embodied);
    std::cout << "  whole-device footprint: "
              << util::formatSig(util::asKilograms(whole_life.total()),
                                 3)
              << " kg CO2, embodied share "
              << util::formatFixed(whole_life.embodiedShare() * 100.0, 1)
              << "%\n";
    return 0;
}
