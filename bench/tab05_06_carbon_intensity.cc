/**
 * @file
 * Tables 5 and 6: operational carbon intensities by energy source and
 * by geography, with the blended intensities used as paper defaults.
 */

#include <iostream>

#include "data/carbon_intensity_db.h"
#include "report/experiment.h"
#include "util/csv.h"
#include "util/strings.h"
#include "util/table.h"

int
main(int argc, char **argv)
{
    using namespace act;
    const auto options = report::parseOptions(argc, argv);
    report::Experiment experiment(
        "Tables 5/6", "carbon intensity of energy sources and regions");

    experiment.section("Table 5: energy sources");
    util::Table sources({"Source", "g CO2/kWh",
                         "Energy payback (months)"});
    util::CsvWriter csv({"kind", "name", "g_per_kwh"});
    for (const auto &record : data::energySourceTable()) {
        sources.addRow(record.name, {record.intensity.value(),
                                     record.payback_months});
        csv.addRow({"source", record.name,
                    util::formatSig(record.intensity.value(), 4)});
    }
    std::cout << sources.render();

    experiment.section("Table 6: regional grid averages");
    util::Table regions({"Region", "g CO2/kWh", "Dominant source"});
    for (const auto &record : data::regionTable()) {
        regions.addRow({record.name,
                        util::formatSig(record.intensity.value(), 4),
                        record.dominant_source});
        csv.addRow({"region", record.name,
                    util::formatSig(record.intensity.value(), 4)});
    }
    std::cout << regions.render();

    experiment.claim(
        "coal vs wind intensity span", "820 vs 11 g/kWh",
        util::formatSig(
            data::sourceIntensity(data::EnergySource::Coal).value(), 3) +
            " vs " +
            util::formatSig(
                data::sourceIntensity(data::EnergySource::Wind).value(),
                3) + " g/kWh");
    experiment.claim(
        "default fab intensity (Taiwan + 25% solar)", "~447 g/kWh",
        util::formatSig(data::defaultFabIntensity().value(), 4) +
            " g/kWh");
    experiment.claim(
        "default use intensity (US average, Sec. 6)", "300 g/kWh",
        util::formatSig(data::defaultUseIntensity().value(), 3) +
            " g/kWh");

    if (options.csv)
        std::cout << csv.toString();
    return 0;
}
