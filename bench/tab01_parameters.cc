/**
 * @file
 * Table 1: the ACT model's input parameters and their instantiated
 * ranges, demonstrated end-to-end by evaluating Eq. 1 for a reference
 * workload on a reference platform, driven through the scenario
 * configuration layer.
 */

#include <iostream>

#include "core/embodied.h"
#include "core/footprint.h"
#include "core/model_config.h"
#include "data/memory_db.h"
#include "report/experiment.h"
#include "util/strings.h"
#include "util/table.h"

int
main(int argc, char **argv)
{
    using namespace act;
    const auto options = report::parseOptions(argc, argv);
    (void)options;
    report::Experiment experiment(
        "Table 1", "ACT model input parameters and ranges");

    const auto &fab_db = data::FabDatabase::instance();
    util::Table table({"Parameter", "Description", "Instantiated"});
    table.addRow({"T", "app execution time", "from SW profiling"});
    table.addRow({"LT", "hardware lifetime", "1-10 years"});
    table.addRow({"Nr", "number of ICs", "from HW design"});
    table.addRow({"Kr", "IC packaging footprint", "0.15 kg CO2"});
    table.addRow({"A", "IC area", "from HW design (cm2)"});
    table.addRow({"p", "process node", "3-28 nm"});
    table.addRow({"MPA", "raw material procurement",
                  util::formatSig(fab_db.mpa().value() / 1000.0, 2) +
                      " kg CO2/cm2"});
    table.addRow({"EPA", "fab energy",
                  util::formatSig(fab_db.epa(28.0).value(), 3) + "-" +
                      util::formatSig(fab_db.epa(3.0).value(), 3) +
                      " kWh/cm2"});
    table.addRow({"CI_use", "use-phase carbon intensity",
                  "11-820 g CO2/kWh (Tables 5/6)"});
    table.addRow({"CI_fab", "fab carbon intensity",
                  "11-820 g CO2/kWh (Tables 5/6)"});
    table.addRow({"GPA", "fab gas emissions",
                  util::formatSig(fab_db.gpa(28.0, 0.99).value(), 3) +
                      "-" +
                      util::formatSig(fab_db.gpa(3.0, 0.95).value(), 3) +
                      " g CO2/cm2"});
    table.addRow({"Y", "fab yield", "(0, 1]; default 0.875"});
    table.addRow({"E_DRAM", "DRAM embodied carbon",
                  "48-600 g CO2/GB (Table 9)"});
    table.addRow({"E_SSD", "SSD embodied carbon",
                  "3.95-30 g CO2/GB (Table 10)"});
    table.addRow({"E_HDD", "HDD embodied carbon",
                  "1.14-20.5 g CO2/GB (Table 11)"});
    std::cout << table.render();

    experiment.section("end-to-end Eq. 1 walkthrough");
    // A phone-class platform: 1 cm2 SoC at 7 nm, 8 GB LPDDR4, 128 GB
    // NAND, 3 ICs, running a 1-hour 2 W workload daily for 3 years.
    const core::Scenario scenario;  // paper defaults
    const util::Mass soc = core::logicEmbodied(
        util::squareCentimeters(1.0), 7.0, scenario.fab);
    const util::Mass dram = core::storageEmbodied(
        util::gigabytes(8.0), data::defaultDram().cps);
    const util::Mass nand = core::storageEmbodied(
        util::gigabytes(128.0), data::defaultSsd().cps);
    const util::Mass ecf =
        soc + dram + nand + core::packagingEmbodied(3);

    const util::Duration use_time =
        util::hours(1.0) * (3.0 * util::kDaysPerYear);
    const util::Energy energy = util::watts(2.0) * use_time;
    const util::Mass opcf =
        core::operationalFootprint(energy, scenario.operational);
    const core::CarbonFootprint cf = core::combineFootprint(
        opcf, ecf, use_time, scenario.lifetime);

    util::Table walk({"Quantity", "Value"});
    walk.addRow({"E_SoC (Eq. 4)",
                 util::formatSig(util::asKilograms(soc), 3) + " kg"});
    walk.addRow({"E_DRAM (Eq. 6)",
                 util::formatSig(util::asKilograms(dram), 3) + " kg"});
    walk.addRow({"E_SSD (Eq. 8)",
                 util::formatSig(util::asKilograms(nand), 3) + " kg"});
    walk.addRow({"ECF (Eq. 3)",
                 util::formatSig(util::asKilograms(ecf), 3) + " kg"});
    walk.addRow({"OPCF (Eq. 2)",
                 util::formatSig(util::asKilograms(opcf), 3) + " kg"});
    walk.addRow({"CF (Eq. 1)",
                 util::formatSig(util::asKilograms(cf.total()), 3) +
                     " kg"});
    walk.addRow({"embodied share",
                 util::formatFixed(cf.embodiedShare() * 100.0, 1) +
                     "%"});
    std::cout << walk.render();

    experiment.claim("Kr packaging footprint", "0.15 kg CO2",
                     util::formatSig(util::asKilograms(
                         core::kPackagingFootprint), 2) + " kg");
    experiment.note("embodied emissions dominate the mobile footprint, "
                    "matching the paper's motivation");
    return 0;
}
