/**
 * @file
 * Figure 1 (left): the shift of mobile carbon footprints from
 * operational to embodied emissions between the iPhone 3GS (2009) and
 * the iPhone 11 (2019), from the published product environmental
 * reports encoded in the device database.
 */

#include <iostream>

#include "data/device_db.h"
#include "report/experiment.h"
#include "util/chart.h"
#include "util/csv.h"
#include "util/strings.h"
#include "util/table.h"

int
main(int argc, char **argv)
{
    using namespace act;
    const auto options = report::parseOptions(argc, argv);
    report::Experiment experiment(
        "Figure 1",
        "life-cycle emission shares shift from use to manufacturing");

    const auto &db = data::DeviceDatabase::instance();
    const auto devices = {db.byNameOrDie("iPhone 3GS"),
                          db.byNameOrDie("iPhone 11")};

    util::Table table({"Device", "Total (kg)", "Manufacturing %",
                       "Use %", "Transport %", "End-of-life %"});
    std::vector<util::StackedBarEntry> bars;
    util::CsvWriter csv({"device", "production_share", "use_share"});
    for (const auto &device : devices) {
        table.addRow(device.name,
                     {util::asKilograms(device.lca.total),
                      device.lca.production_share * 100.0,
                      device.lca.use_share * 100.0,
                      device.lca.transport_share * 100.0,
                      device.lca.eol_share * 100.0});
        bars.push_back(
            {device.name,
             util::asKilograms(device.lca.productionFootprint()),
             util::asKilograms(device.lca.useFootprint())});
        csv.addRow(device.name, {device.lca.production_share,
                                 device.lca.use_share});
    }
    std::cout << table.render();
    std::cout << util::renderStackedBarChart(
        "Life-cycle footprint (kg CO2)", "embodied/manufacturing",
        "operational", bars);

    const auto iphone3 = db.byNameOrDie("iPhone 3GS");
    const auto iphone11 = db.byNameOrDie("iPhone 11");
    experiment.claim("iPhone 3GS manufacturing share", "45%",
                     util::formatFixed(
                         iphone3.lca.production_share * 100.0, 0) + "%");
    experiment.claim("iPhone 3GS use share", "49%",
                     util::formatFixed(iphone3.lca.use_share * 100.0, 0) +
                         "%");
    experiment.claim("iPhone 11 manufacturing share", "79%",
                     util::formatFixed(
                         iphone11.lca.production_share * 100.0, 0) + "%");
    experiment.claim("iPhone 11 use share", "17%",
                     util::formatFixed(iphone11.lca.use_share * 100.0,
                                       0) + "%");
    experiment.note("operational efficiency improved ~2.5x across the "
                    "decade while manufacturing complexity grew, so "
                    "embodied emissions now dominate");

    if (options.csv)
        std::cout << csv.toString();
    return 0;
}
