/**
 * @file
 * Table 12: IC-level comparison of published LCA estimates against ACT
 * evaluated at (1) the dated node the LCA database assumed and (2) the
 * hardware's actual node -- for the Dell R740, Fairphone 3, and
 * iPhone 11. The headline: LCA databases built on decade-old process
 * data grossly overstate modern memory/storage footprints.
 */

#include <iostream>

#include "core/embodied.h"
#include "report/experiment.h"
#include "util/csv.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using namespace act;

struct ComparisonRow
{
    const char *ic;
    const char *device;
    const char *lca_node;
    double lca_kg;       // published LCA estimate
    const char *node1;   // ACT evaluated at the LCA's dated node
    const char *node2;   // ACT evaluated at the actual node
    double paper_act1_kg;
    double paper_act2_kg;
    /** Evaluate with this library's model. Storage rows use capacity x
     *  CPS; logic rows use Eq. 4 over the die area. */
    double capacity_gb;      // 0 for logic rows
    double logic_area_mm2;   // 0 for storage rows
    double node1_nm;         // logic only
    double node2_nm;         // logic only
};

const ComparisonRow kRows[] = {
    {"RAM", "Dell R740 (384GB)", "50nm DDR3", 533.0, "50nm DDR3",
     "10nm DDR4", 329.0, 64.0, 384.0, 0.0, 0.0, 0.0},
    {"RAM", "Fairphone 3 (4GB)", "50nm DDR3", -1.0, "50nm DDR3",
     "10nm DDR4", 2.9, 0.5, 4.0, 0.0, 0.0, 0.0},
    {"Flash", "Dell R740 (31TB)", "45nm NAND", 3373.0, "30nm NAND",
     "V3 NAND TLC", 1440.0, 583.0, 30720.0, 0.0, 0.0, 0.0},
    {"Flash", "Dell R740 (400GB)", "45nm NAND", 67.0, "30nm NAND",
     "V3 NAND TLC", 63.0, 14.0, 400.0, 0.0, 0.0, 0.0},
    {"Flash", "Fairphone 3 (64GB)", "50nm NAND", -1.0, "30nm NAND",
     "V3 NAND TLC", 2.3, 0.9, 64.0, 0.0, 0.0, 0.0},
    {"Flash", "iPhone 11 (64GB)", "-", 0.56, "10nm NAND", "V3 NAND TLC",
     0.6, 0.48, 64.0, 0.0, 0.0, 0.0},
    {"CPU", "Dell R740 (2x Xeon)", "32nm", 47.0, "28nm", "14nm", 22.0,
     27.0, 0.0, 2.0 * 694.0, 28.0, 14.0},
    {"CPU", "Fairphone 3", "32nm", 1.07, "28nm", "14nm", 0.9, 1.1, 0.0,
     70.0, 28.0, 14.0},
    {"Other ICs", "Fairphone 3", "32nm", 5.3, "28nm", "14nm", 5.6, 6.2,
     0.0, 470.0, 28.0, 14.0},
};

double
evaluateKg(const ComparisonRow &row, bool actual_node)
{
    const core::FabParams fab;
    if (row.capacity_gb > 0.0) {
        const char *technology = actual_node ? row.node2 : row.node1;
        return util::asKilograms(core::storageEmbodied(
            util::gigabytes(row.capacity_gb), technology));
    }
    return util::asKilograms(core::logicEmbodied(
        util::squareMillimeters(row.logic_area_mm2),
        actual_node ? row.node2_nm : row.node1_nm, fab));
}

} // namespace

int
main(int argc, char **argv)
{
    const auto options = report::parseOptions(argc, argv);
    report::Experiment experiment(
        "Table 12", "IC-level LCA vs ACT comparison");

    util::Table table({"IC", "Device", "LCA node", "LCA kg",
                       "ACT node 1", "kg (paper)", "kg (ours)",
                       "ACT node 2", "kg (paper)", "kg (ours)"});
    util::CsvWriter csv({"ic", "device", "lca_kg", "act_node1_kg",
                         "act_node2_kg"});
    for (const auto &row : kRows) {
        const double ours1 = evaluateKg(row, false);
        const double ours2 = evaluateKg(row, true);
        table.addRow({row.ic, row.device, row.lca_node,
                      row.lca_kg < 0.0 ? "-"
                                       : util::formatSig(row.lca_kg, 4),
                      row.node1, util::formatSig(row.paper_act1_kg, 4),
                      util::formatSig(ours1, 4), row.node2,
                      util::formatSig(row.paper_act2_kg, 4),
                      util::formatSig(ours2, 4)});
        csv.addRow({row.ic, row.device,
                    util::formatSig(row.lca_kg, 5),
                    util::formatSig(ours1, 5),
                    util::formatSig(ours2, 5)});
    }
    std::cout << table.render();

    // The structural claims: LCA estimates built on dated nodes exceed
    // ACT's dated-node estimates, which exceed actual-node estimates
    // for memory/storage.
    bool ordering_holds = true;
    for (const auto &row : kRows) {
        if (row.capacity_gb <= 0.0 || row.lca_kg <= 0.0)
            continue;
        if (std::string(row.ic) == "Flash" &&
            std::string(row.device).find("iPhone") != std::string::npos)
            continue;  // the iPhone row's LCA value is ACT-derived
        ordering_holds = ordering_holds &&
                         row.lca_kg > evaluateKg(row, false) &&
                         evaluateKg(row, false) > evaluateKg(row, true);
    }
    experiment.claim("LCA > ACT(dated node) > ACT(actual node) for "
                     "memory/storage",
                     "yes", ordering_holds ? "yes" : "no");
    experiment.claim(
        "Dell R740 RAM at actual node", "64 kg (paper)",
        util::formatSig(evaluateKg(kRows[0], true), 3) + " kg");
    experiment.note("paper ACT values embed additional per-device "
                    "overheads (controller DRAM, packaging) that the "
                    "pure capacity x CPS terms exclude; shapes and "
                    "orderings match (see EXPERIMENTS.md)");

    if (options.csv)
        std::cout << csv.toString();
    return 0;
}
