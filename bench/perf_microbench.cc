/**
 * @file
 * google-benchmark microbenchmarks for the model-evaluation hot paths:
 * CPA computation (cached via core::CpaCache and with the cache
 * bypassed), device evaluation, the NPU simulator, the FTL simulator,
 * and the design-space sweeps at 1/4/8 worker threads (serial vs the
 * util/parallel pool). These bound the cost of embedding ACT inside
 * larger design-space-exploration loops.
 */

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "accel/design_space.h"
#include "config/json.h"
#include "core/cpa_cache.h"
#include "core/embodied.h"
#include "core/eval_plan.h"
#include "dse/montecarlo.h"
#include "dse/scoreboard.h"
#include "fleet/replay.h"
#include "mobile/platform.h"
#include "pkg/pkg_plan.h"
#include "ssd/ftl_sim.h"
#include "util/parallel.h"
#include "util/random.h"
#include "util/simd.h"

namespace {

using namespace act;

void
BM_CarbonPerArea(benchmark::State &state)
{
    const core::FabParams fab;
    double nm = 3.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::carbonPerArea(fab, nm));
        nm = nm >= 28.0 ? 3.0 : nm + 1.0;
    }
}
BENCHMARK(BM_CarbonPerArea);

/** The raw Eq. 5 computation with memoization bypassed. */
void
BM_CpaUncached(benchmark::State &state)
{
    core::CpaCache::instance().setEnabled(false);
    const core::FabParams fab;
    double nm = 3.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::carbonPerArea(fab, nm));
        nm = nm >= 28.0 ? 3.0 : nm + 1.0;
    }
    core::CpaCache::instance().setEnabled(true);
}
BENCHMARK(BM_CpaUncached);

/** Steady-state cache hits over the 26-node working set. */
void
BM_CpaCached(benchmark::State &state)
{
    core::CpaCache::instance().setEnabled(true);
    const core::FabParams fab;
    for (double warm = 3.0; warm <= 28.0; warm += 1.0)
        benchmark::DoNotOptimize(core::carbonPerArea(fab, warm));
    double nm = 3.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::carbonPerArea(fab, nm));
        nm = nm >= 28.0 ? 3.0 : nm + 1.0;
    }
    const auto stats = core::CpaCache::instance().stats();
    state.counters["hit_rate"] = stats.hitRate();
}
BENCHMARK(BM_CpaCached);

void
BM_DeviceEvaluation(benchmark::State &state)
{
    const core::EmbodiedModel model;
    const auto device =
        data::DeviceDatabase::instance().byNameOrDie("iPhone 11");
    for (auto _ : state)
        benchmark::DoNotOptimize(model.evaluate(device));
}
BENCHMARK(BM_DeviceEvaluation);

/** Full Fig. 8 sweep + scoreboard at 1/4/8 worker threads. */
void
BM_MobileDesignSpace(benchmark::State &state)
{
    util::setThreadCount(static_cast<std::size_t>(state.range(0)));
    const core::FabParams fab;
    for (auto _ : state) {
        const auto space = mobile::mobileDesignSpace(fab);
        const dse::Scoreboard scoreboard(space);
        benchmark::DoNotOptimize(
            scoreboard.winner(core::Metric::C2EP));
    }
    util::setThreadCount(0);
}
BENCHMARK(BM_MobileDesignSpace)->Arg(1)->Arg(4)->Arg(8);

/** Eq. 5 Monte Carlo (Table 1 uncertainty) at 1/4/8 worker threads. */
void
BM_MonteCarlo(benchmark::State &state)
{
    util::setThreadCount(static_cast<std::size_t>(state.range(0)));
    const std::vector<dse::UncertainParameter> parameters = {
        {"ci_fab", dse::Distribution::Triangular, 447.5, 41.0, 583.0},
        {"epa", dse::Distribution::Triangular, 1.52, 1.216, 1.824},
        {"gpa", dse::Distribution::Uniform, 275.0, 200.0, 350.0},
        {"mpa", dse::Distribution::Uniform, 500.0, 400.0, 600.0},
        {"yield", dse::Distribution::Triangular, 0.875, 0.6, 0.95},
    };
    for (auto _ : state) {
        const auto result = dse::monteCarlo(
            parameters,
            [](const std::vector<double> &v) {
                return (v[0] * v[1] + v[2] + v[3]) / v[4];
            },
            100'000);
        benchmark::DoNotOptimize(result.p95);
    }
    state.SetItemsProcessed(state.iterations() * 100'000);
    util::setThreadCount(0);
}
BENCHMARK(BM_MonteCarlo)->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

/** The cpa_montecarlo sweep shape: Eq. 5 at 7 nm with uncertain
 *  ci_fab / yield / abatement, shared by the scalar-vs-batch pair
 *  below so the two benchmarks evaluate the same model. */
const std::vector<dse::UncertainParameter> &
cpaMcParameters()
{
    static const std::vector<dse::UncertainParameter> parameters = {
        {"ci_fab_g_per_kwh", dse::Distribution::Uniform, 365.0, 30.0,
         700.0},
        {"yield", dse::Distribution::Triangular, 0.875, 0.8, 0.95},
        {"abatement", dse::Distribution::Uniform, 0.95, 0.90, 1.0},
    };
    return parameters;
}

/**
 * Scalar closure baseline: per sample, copy FabParams, re-resolve the
 * node curves, recompute Eq. 5 through core::carbonPerArea. The CPA
 * cache is disabled -- continuously sampled fab parameters make every
 * lookup a unique-key miss, so the cache would only add copy-on-write
 * insert traffic on top of the compute being measured.
 */
void
BM_MonteCarloCpaScalar(benchmark::State &state)
{
    util::setThreadCount(1);
    core::CpaCache::instance().setEnabled(false);
    const auto &parameters = cpaMcParameters();
    for (auto _ : state) {
        const auto result = dse::monteCarlo(
            parameters,
            [](const std::vector<double> &v) {
                core::FabParams fab;
                fab.ci_fab = util::gramsPerKilowattHour(v[0]);
                fab.yield = v[1];
                fab.abatement = v[2];
                return core::carbonPerArea(fab, 7.0).value();
            },
            100'000);
        benchmark::DoNotOptimize(result.p95);
    }
    state.SetItemsProcessed(state.iterations() * 100'000);
    core::CpaCache::instance().setEnabled(true);
    util::setThreadCount(0);
}
BENCHMARK(BM_MonteCarloCpaScalar)->Unit(benchmark::kMillisecond);

/** The same sweep through the compiled plan + SoA batch kernel
 *  (bit-identical results; the acceptance target is >= 3x the scalar
 *  closure's single-core throughput). */
void
BM_MonteCarloBatch(benchmark::State &state)
{
    util::setThreadCount(1);
    const core::FabParams fab;
    const std::vector<core::EvalInput> bindings = {
        core::EvalInput::CiFab, core::EvalInput::Yield,
        core::EvalInput::Abatement};
    const core::EvalPlan plan =
        core::EvalPlan::forNode(fab, 7.0, bindings);
    const auto &parameters = cpaMcParameters();
    for (auto _ : state) {
        const auto result =
            dse::monteCarloBatch(parameters, plan, 100'000);
        benchmark::DoNotOptimize(result.p95);
    }
    state.SetItemsProcessed(state.iterations() * 100'000);
    util::setThreadCount(0);
}
BENCHMARK(BM_MonteCarloBatch)->Unit(benchmark::kMillisecond);

/** Force a dispatch level for one benchmark, or skip when the host
 *  cannot run it. True when the level was installed. */
bool
forceLevelOrSkip(benchmark::State &state, util::SimdLevel level)
{
    if (!util::simdLevelAvailable(level)) {
        state.SkipWithError("SIMD level unavailable on this host");
        return false;
    }
    util::setSimdLevel(level);
    return true;
}

/** Multi-lane RNG fill (100k units) at a forced dispatch level. */
void
BM_XorshiftLanes(benchmark::State &state, util::SimdLevel level)
{
    if (!forceLevelOrSkip(state, level))
        return;
    constexpr std::size_t kUnits = 100'000;
    std::vector<double> units(kUnits);
    util::XorshiftLanes lanes{util::Xorshift64Star(42)};
    for (auto _ : state) {
        lanes.fillUnits(units.data(), kUnits);
        benchmark::DoNotOptimize(units.data());
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(kUnits));
    util::setSimdLevel(util::detectedSimdLevel());
}
BENCHMARK_CAPTURE(BM_XorshiftLanes, scalar, util::SimdLevel::Scalar);
BENCHMARK_CAPTURE(BM_XorshiftLanes, sse2, util::SimdLevel::Sse2);
BENCHMARK_CAPTURE(BM_XorshiftLanes, avx2, util::SimdLevel::Avx2);

/** EvalPlan::evaluateBatch over 100k samples (validation included)
 *  at a forced dispatch level. */
void
BM_EvalBatchSimd(benchmark::State &state, util::SimdLevel level)
{
    if (!forceLevelOrSkip(state, level))
        return;
    constexpr std::size_t kSamples = 100'000;
    const core::FabParams fab;
    const std::vector<core::EvalInput> bindings = {
        core::EvalInput::CiFab, core::EvalInput::Yield,
        core::EvalInput::Abatement};
    const core::EvalPlan plan =
        core::EvalPlan::forNode(fab, 7.0, bindings);

    std::vector<double> ci(kSamples), yield(kSamples),
        abatement(kSamples), outputs(kSamples);
    util::Xorshift64Star rng(7);
    for (std::size_t s = 0; s < kSamples; ++s) {
        ci[s] = rng.nextUniform(365.0, 700.0);
        yield[s] = rng.nextUniform(0.8, 0.95);
        abatement[s] = rng.nextUniform(0.90, 1.0);
    }
    const double *inputs[3] = {ci.data(), yield.data(),
                               abatement.data()};
    for (auto _ : state) {
        plan.evaluateBatch(kSamples, inputs, outputs.data());
        benchmark::DoNotOptimize(outputs.data());
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(kSamples));
    util::setSimdLevel(util::detectedSimdLevel());
}
BENCHMARK_CAPTURE(BM_EvalBatchSimd, scalar, util::SimdLevel::Scalar);
BENCHMARK_CAPTURE(BM_EvalBatchSimd, sse2, util::SimdLevel::Sse2);
BENCHMARK_CAPTURE(BM_EvalBatchSimd, avx2, util::SimdLevel::Avx2);

/** BM_MonteCarloBatch's sweep pinned to a dispatch level: the
 *  scalar/sse2/avx2 spread is the SIMD speedup on this host, with
 *  results bit-identical across the three by contract. */
void
BM_MonteCarloBatchSimd(benchmark::State &state, util::SimdLevel level)
{
    if (!forceLevelOrSkip(state, level))
        return;
    util::setThreadCount(1);
    const core::FabParams fab;
    const std::vector<core::EvalInput> bindings = {
        core::EvalInput::CiFab, core::EvalInput::Yield,
        core::EvalInput::Abatement};
    const core::EvalPlan plan =
        core::EvalPlan::forNode(fab, 7.0, bindings);
    const auto &parameters = cpaMcParameters();
    for (auto _ : state) {
        const auto result =
            dse::monteCarloBatch(parameters, plan, 100'000);
        benchmark::DoNotOptimize(result.p95);
    }
    state.SetItemsProcessed(state.iterations() * 100'000);
    util::setThreadCount(0);
    util::setSimdLevel(util::detectedSimdLevel());
}
BENCHMARK_CAPTURE(BM_MonteCarloBatchSimd, scalar,
                  util::SimdLevel::Scalar)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_MonteCarloBatchSimd, sse2, util::SimdLevel::Sse2)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_MonteCarloBatchSimd, avx2, util::SimdLevel::Avx2)
    ->Unit(benchmark::kMillisecond);

/** Compiled package evaluation over a 100k fab-CI scenario column:
 *  a heterogeneous 2.5D package (two 5 nm compute dies, one mature
 *  I/O die, two cache dies, silicon interposer) through
 *  pkg::PackagePlan::evaluateBatch. Bounds the cost of sweeping
 *  packaging choices inside DSE loops. */
void
BM_PackageEvalBatch(benchmark::State &state)
{
    constexpr std::size_t kSamples = 100'000;
    pkg::PackageSpec spec =
        pkg::PackageSpec::forStyle(pkg::PackagingStyle::SiliconInterposer);
    const core::DefectParams leading{
        0.12, 3.0, core::YieldModel::NegativeBinomial};
    const core::DefectParams mature{
        0.08, 2.0, core::YieldModel::NegativeBinomial};
    spec.chiplets.push_back(
        {"compute", util::squareMillimeters(150.0), 5.0, leading, 2});
    spec.chiplets.push_back(
        {"io", util::squareMillimeters(90.0), 28.0, mature, 1});
    spec.chiplets.push_back(
        {"cache", util::squareMillimeters(60.0), 14.0, leading, 2});
    const std::vector<core::EvalInput> bindings = {
        core::EvalInput::CiFab};
    const pkg::PackagePlan plan =
        pkg::PackagePlan::compile(spec, core::FabParams{}, bindings);

    std::vector<double> ci(kSamples), outputs(kSamples),
        scratch(kSamples);
    util::Xorshift64Star rng(7);
    for (std::size_t s = 0; s < kSamples; ++s)
        ci[s] = rng.nextUniform(30.0, 700.0);
    const double *inputs[1] = {ci.data()};
    for (auto _ : state) {
        plan.evaluateBatch(kSamples, inputs, outputs.data(),
                           scratch.data());
        benchmark::DoNotOptimize(outputs.data());
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(kSamples));
}
BENCHMARK(BM_PackageEvalBatch);

/** Fig. 12-class NPU design-space walk across nodes, 1/4/8 threads. */
void
BM_NpuDesignSpaceWalk(benchmark::State &state)
{
    util::setThreadCount(static_cast<std::size_t>(state.range(0)));
    const accel::NpuModel model;
    const core::FabParams fab;
    for (auto _ : state) {
        double total = 0.0;
        for (double node : {28.0, 20.0, 16.0, 10.0, 7.0, 5.0, 3.0}) {
            for (const auto &entry :
                 accel::sweepDesignSpace(model, node, fab))
                total += entry.embodied.value();
        }
        benchmark::DoNotOptimize(total);
    }
    util::setThreadCount(0);
}
BENCHMARK(BM_NpuDesignSpaceWalk)->Arg(1)->Arg(4)->Arg(8);

void
BM_NpuEvaluation(benchmark::State &state)
{
    const accel::NpuModel model;
    const accel::Network &network = accel::referenceVisionNetwork();
    const int macs = static_cast<int>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            model.evaluate(network, {macs, 16.0}));
    }
}
BENCHMARK(BM_NpuEvaluation)->Arg(64)->Arg(512)->Arg(2048);

/**
 * Trace-driven fleet replay: 10k synthetic jobs placed under four
 * deferral policies across a seasonal solar region and a flat clean
 * one (8 scenarios -- one year of hourly samples). items/s counts job
 * placements (jobs x scenarios); the sweep acceptance floor is
 * >= 1M placements/s single-core.
 */
fleet::FleetSetup
fleetBenchSetup()
{
    const auto config = config::JsonValue::parse(R"({
        "pue": 1.3,
        "lifetime_years": [4],
        "policies": ["uniform", "greedy", "deadline", "migrate"],
        "regions": [
            {"name": "tw-solar", "profile": "solar",
             "region": "Taiwan", "share": 0.25, "days": 365,
             "seasonal_amplitude": 0.15},
            {"name": "is-flat", "profile": "flat",
             "region": "Iceland", "days": 365}
        ],
        "jobs": {"horizon_hours": 8760}
    })");
    return fleet::fleetSetupFromJson(config, 42);
}

void
BM_FleetReplay(benchmark::State &state)
{
    constexpr std::size_t kJobs = 10'000;
    const fleet::FleetSetup setup = fleetBenchSetup();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            fleet::replayJobs(setup, {0, kJobs}));
    }
    state.SetItemsProcessed(
        state.iterations() *
        static_cast<std::int64_t>(kJobs * setup.scenarios.size()));
}
BENCHMARK(BM_FleetReplay)->Unit(benchmark::kMillisecond);

/** The same replay pinned to one dispatch level, so the perf gate
 *  can track the scalar and SSE2 tiers independently of the host's
 *  best level. */
void
BM_FleetReplaySimd(benchmark::State &state, util::SimdLevel level)
{
    if (!forceLevelOrSkip(state, level))
        return;
    constexpr std::size_t kJobs = 10'000;
    const fleet::FleetSetup setup = fleetBenchSetup();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            fleet::replayJobs(setup, {0, kJobs}));
    }
    state.SetItemsProcessed(
        state.iterations() *
        static_cast<std::int64_t>(kJobs * setup.scenarios.size()));
    util::setSimdLevel(util::detectedSimdLevel());
}
BENCHMARK_CAPTURE(BM_FleetReplaySimd, scalar, util::SimdLevel::Scalar)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_FleetReplaySimd, sse2, util::SimdLevel::Sse2)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_FleetReplaySimd, avx2, util::SimdLevel::Avx2)
    ->Unit(benchmark::kMillisecond);

/** SoA job-block generation alone (the replay's front half): 100k
 *  jobs in 512-job blocks, bit-identical to 100k jobAt() calls. */
void
BM_JobStreamBlock(benchmark::State &state)
{
    constexpr std::size_t kJobs = 100'000;
    constexpr std::size_t kBlock = 512;
    fleet::JobStreamParams params;
    params.horizon_hours = 8760.0;
    fleet::JobBlock block;
    for (auto _ : state) {
        double total = 0.0;
        for (std::size_t first = 0; first < kJobs; first += kBlock) {
            const std::size_t count =
                std::min(kBlock, kJobs - first);
            fleet::jobBlockAt(params, first, count, block);
            total += block.duration_hours[count - 1];
        }
        benchmark::DoNotOptimize(total);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(kJobs));
}
BENCHMARK(BM_JobStreamBlock)->Unit(benchmark::kMillisecond);

void
BM_FtlSimulator(benchmark::State &state)
{
    ssd::FtlConfig config;
    config.num_blocks = 128;
    config.pages_per_block = 32;
    config.over_provision = 0.16;
    config.user_writes = static_cast<std::uint64_t>(state.range(0));
    for (auto _ : state) {
        ssd::FtlSimulator simulator(config);
        benchmark::DoNotOptimize(simulator.run());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(state.range(0)));
}
BENCHMARK(BM_FtlSimulator)->Arg(10000)->Arg(100000);

/**
 * The usual console output plus a machine-readable BENCH_results.json
 * (name, wall ns/iter, CPU ns/iter, iterations) so the perf trajectory
 * can be tracked across PRs. Path override: ACT_BENCH_JSON.
 */
class JsonEmittingReporter : public benchmark::ConsoleReporter
{
  public:
    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        ConsoleReporter::ReportRuns(runs);
        for (const Run &run : runs) {
            if (run.error_occurred ||
                run.run_type != Run::RT_Iteration ||
                run.iterations == 0) {
                continue;
            }
            const double iterations =
                static_cast<double>(run.iterations);
            config::JsonObject entry;
            entry["name"] = run.benchmark_name();
            entry["iterations"] = iterations;
            entry["real_time_ns"] =
                run.real_accumulated_time * 1e9 / iterations;
            entry["cpu_time_ns"] =
                run.cpu_accumulated_time * 1e9 / iterations;
            results_.emplace_back(std::move(entry));
        }
    }

    config::JsonArray
    takeResults()
    {
        return std::move(results_);
    }

  private:
    config::JsonArray results_;
};

#ifndef ACT_GIT_SHA
#define ACT_GIT_SHA "unknown"
#endif

/**
 * The run's provenance stamp: numbers from a different machine, SIMD
 * dispatch level, commit, or thread setting are not comparable, and
 * check_bench_regression.py warns when baseline and candidate stamps
 * disagree.
 */
config::JsonValue
provenance()
{
    std::string hostname = "unknown";
#if defined(__unix__) || defined(__APPLE__)
    char buffer[256] = {};
    if (gethostname(buffer, sizeof(buffer) - 1) == 0 &&
        buffer[0] != '\0') {
        hostname = buffer;
    }
#endif
    const char *threads = std::getenv("ACT_THREADS");
    config::JsonObject stamp;
    stamp["git_sha"] = config::JsonValue(ACT_GIT_SHA);
    stamp["simd_level"] = config::JsonValue(
        util::simdLevelName(util::simdLevel()));
    stamp["act_threads"] = config::JsonValue(
        threads != nullptr && *threads != '\0' ? threads : "auto");
    stamp["hostname"] = config::JsonValue(std::move(hostname));
    return config::JsonValue(std::move(stamp));
}

} // namespace

int
main(int argc, char **argv)
{
    // Capture the stamp before any benchmark forces a SIMD level; this
    // is what runtime dispatch actually selected on this host.
    const act::config::JsonValue stamp = provenance();

    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    JsonEmittingReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);

    const char *env = std::getenv("ACT_BENCH_JSON");
    const std::string path =
        env != nullptr && *env != '\0' ? env : "BENCH_results.json";
    act::config::JsonObject root;
    root["provenance"] = stamp;
    root["benchmarks"] = act::config::JsonValue(reporter.takeResults());
    act::config::saveJsonFile(path, act::config::JsonValue(
                                        std::move(root)));
    std::cout << "wrote " << path << "\n";

    benchmark::Shutdown();
    return 0;
}
