/**
 * @file
 * google-benchmark microbenchmarks for the model-evaluation hot paths:
 * CPA computation (cached via core::CpaCache and with the cache
 * bypassed), device evaluation, the NPU simulator, the FTL simulator,
 * and the design-space sweeps at 1/4/8 worker threads (serial vs the
 * util/parallel pool). These bound the cost of embedding ACT inside
 * larger design-space-exploration loops.
 */

#include <benchmark/benchmark.h>

#include "accel/design_space.h"
#include "core/cpa_cache.h"
#include "core/embodied.h"
#include "dse/montecarlo.h"
#include "dse/scoreboard.h"
#include "mobile/platform.h"
#include "ssd/ftl_sim.h"
#include "util/parallel.h"

namespace {

using namespace act;

void
BM_CarbonPerArea(benchmark::State &state)
{
    const core::FabParams fab;
    double nm = 3.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::carbonPerArea(fab, nm));
        nm = nm >= 28.0 ? 3.0 : nm + 1.0;
    }
}
BENCHMARK(BM_CarbonPerArea);

/** The raw Eq. 5 computation with memoization bypassed. */
void
BM_CpaUncached(benchmark::State &state)
{
    core::CpaCache::instance().setEnabled(false);
    const core::FabParams fab;
    double nm = 3.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::carbonPerArea(fab, nm));
        nm = nm >= 28.0 ? 3.0 : nm + 1.0;
    }
    core::CpaCache::instance().setEnabled(true);
}
BENCHMARK(BM_CpaUncached);

/** Steady-state cache hits over the 26-node working set. */
void
BM_CpaCached(benchmark::State &state)
{
    core::CpaCache::instance().setEnabled(true);
    const core::FabParams fab;
    for (double warm = 3.0; warm <= 28.0; warm += 1.0)
        benchmark::DoNotOptimize(core::carbonPerArea(fab, warm));
    double nm = 3.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::carbonPerArea(fab, nm));
        nm = nm >= 28.0 ? 3.0 : nm + 1.0;
    }
    const auto stats = core::CpaCache::instance().stats();
    state.counters["hit_rate"] = stats.hitRate();
}
BENCHMARK(BM_CpaCached);

void
BM_DeviceEvaluation(benchmark::State &state)
{
    const core::EmbodiedModel model;
    const auto device =
        data::DeviceDatabase::instance().byNameOrDie("iPhone 11");
    for (auto _ : state)
        benchmark::DoNotOptimize(model.evaluate(device));
}
BENCHMARK(BM_DeviceEvaluation);

/** Full Fig. 8 sweep + scoreboard at 1/4/8 worker threads. */
void
BM_MobileDesignSpace(benchmark::State &state)
{
    util::setThreadCount(static_cast<std::size_t>(state.range(0)));
    const core::FabParams fab;
    for (auto _ : state) {
        const auto space = mobile::mobileDesignSpace(fab);
        const dse::Scoreboard scoreboard(space);
        benchmark::DoNotOptimize(
            scoreboard.winner(core::Metric::C2EP));
    }
    util::setThreadCount(0);
}
BENCHMARK(BM_MobileDesignSpace)->Arg(1)->Arg(4)->Arg(8);

/** Eq. 5 Monte Carlo (Table 1 uncertainty) at 1/4/8 worker threads. */
void
BM_MonteCarlo(benchmark::State &state)
{
    util::setThreadCount(static_cast<std::size_t>(state.range(0)));
    const std::vector<dse::UncertainParameter> parameters = {
        {"ci_fab", dse::Distribution::Triangular, 447.5, 41.0, 583.0},
        {"epa", dse::Distribution::Triangular, 1.52, 1.216, 1.824},
        {"gpa", dse::Distribution::Uniform, 275.0, 200.0, 350.0},
        {"mpa", dse::Distribution::Uniform, 500.0, 400.0, 600.0},
        {"yield", dse::Distribution::Triangular, 0.875, 0.6, 0.95},
    };
    for (auto _ : state) {
        const auto result = dse::monteCarlo(
            parameters,
            [](const std::vector<double> &v) {
                return (v[0] * v[1] + v[2] + v[3]) / v[4];
            },
            100'000);
        benchmark::DoNotOptimize(result.p95);
    }
    state.SetItemsProcessed(state.iterations() * 100'000);
    util::setThreadCount(0);
}
BENCHMARK(BM_MonteCarlo)->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

/** Fig. 12-class NPU design-space walk across nodes, 1/4/8 threads. */
void
BM_NpuDesignSpaceWalk(benchmark::State &state)
{
    util::setThreadCount(static_cast<std::size_t>(state.range(0)));
    const accel::NpuModel model;
    const core::FabParams fab;
    for (auto _ : state) {
        double total = 0.0;
        for (double node : {28.0, 20.0, 16.0, 10.0, 7.0, 5.0, 3.0}) {
            for (const auto &entry :
                 accel::sweepDesignSpace(model, node, fab))
                total += entry.embodied.value();
        }
        benchmark::DoNotOptimize(total);
    }
    util::setThreadCount(0);
}
BENCHMARK(BM_NpuDesignSpaceWalk)->Arg(1)->Arg(4)->Arg(8);

void
BM_NpuEvaluation(benchmark::State &state)
{
    const accel::NpuModel model;
    const accel::Network &network = accel::referenceVisionNetwork();
    const int macs = static_cast<int>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            model.evaluate(network, {macs, 16.0}));
    }
}
BENCHMARK(BM_NpuEvaluation)->Arg(64)->Arg(512)->Arg(2048);

void
BM_FtlSimulator(benchmark::State &state)
{
    ssd::FtlConfig config;
    config.num_blocks = 128;
    config.pages_per_block = 32;
    config.over_provision = 0.16;
    config.user_writes = static_cast<std::uint64_t>(state.range(0));
    for (auto _ : state) {
        ssd::FtlSimulator simulator(config);
        benchmark::DoNotOptimize(simulator.run());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(state.range(0)));
}
BENCHMARK(BM_FtlSimulator)->Arg(10000)->Arg(100000);

} // namespace

BENCHMARK_MAIN();
