/**
 * @file
 * google-benchmark microbenchmarks for the model-evaluation hot paths:
 * CPA computation, device evaluation, the NPU simulator, the FTL
 * simulator, and the full mobile design-space sweep. These bound the
 * cost of embedding ACT inside larger design-space-exploration loops.
 */

#include <benchmark/benchmark.h>

#include "accel/design_space.h"
#include "core/embodied.h"
#include "dse/scoreboard.h"
#include "mobile/platform.h"
#include "ssd/ftl_sim.h"

namespace {

using namespace act;

void
BM_CarbonPerArea(benchmark::State &state)
{
    const core::FabParams fab;
    double nm = 3.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::carbonPerArea(fab, nm));
        nm = nm >= 28.0 ? 3.0 : nm + 1.0;
    }
}
BENCHMARK(BM_CarbonPerArea);

void
BM_DeviceEvaluation(benchmark::State &state)
{
    const core::EmbodiedModel model;
    const auto device =
        data::DeviceDatabase::instance().byNameOrDie("iPhone 11");
    for (auto _ : state)
        benchmark::DoNotOptimize(model.evaluate(device));
}
BENCHMARK(BM_DeviceEvaluation);

void
BM_MobileDesignSpace(benchmark::State &state)
{
    const core::FabParams fab;
    for (auto _ : state) {
        const auto space = mobile::mobileDesignSpace(fab);
        const dse::Scoreboard scoreboard(space);
        benchmark::DoNotOptimize(
            scoreboard.winner(core::Metric::C2EP));
    }
}
BENCHMARK(BM_MobileDesignSpace);

void
BM_NpuEvaluation(benchmark::State &state)
{
    const accel::NpuModel model;
    const accel::Network &network = accel::referenceVisionNetwork();
    const int macs = static_cast<int>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            model.evaluate(network, {macs, 16.0}));
    }
}
BENCHMARK(BM_NpuEvaluation)->Arg(64)->Arg(512)->Arg(2048);

void
BM_FtlSimulator(benchmark::State &state)
{
    ssd::FtlConfig config;
    config.num_blocks = 128;
    config.pages_per_block = 32;
    config.over_provision = 0.16;
    config.user_writes = static_cast<std::uint64_t>(state.range(0));
    for (auto _ : state) {
        ssd::FtlSimulator simulator(config);
        benchmark::DoNotOptimize(simulator.run());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(state.range(0)));
}
BENCHMARK(BM_FtlSimulator)->Arg(10000)->Arg(100000);

} // namespace

BENCHMARK_MAIN();
