/**
 * @file
 * Figure 9: the provisioning design space under ACT's carbon metrics,
 * normalized to the CPU-only design. CPU wins the embodied-centric
 * metrics (CDP, C2EP); the DSP wins the operational-centric ones
 * (CEP, CE2P).
 */

#include <iostream>

#include "dse/scoreboard.h"
#include "mobile/provisioning.h"
#include "report/experiment.h"
#include "util/csv.h"
#include "util/strings.h"
#include "util/table.h"

int
main(int argc, char **argv)
{
    using namespace act;
    const auto options = report::parseOptions(argc, argv);
    report::Experiment experiment(
        "Figure 9",
        "carbon-metric optima for CPU/GPU/DSP provisioning");

    const core::FabParams fab;
    const core::OperationalParams use;
    const dse::Scoreboard scoreboard(
        mobile::provisioningDesignSpace(fab, use));

    util::Table table({"Design", "CDP", "C2EP", "CEP", "CE2P"});
    util::CsvWriter csv({"design", "cdp", "c2ep", "cep", "ce2p"});
    const auto designs = scoreboard.designs();
    for (std::size_t i = 0; i < designs.size(); ++i) {
        const std::vector<double> row = {
            scoreboard.column(core::Metric::CDP).normalized[i],
            scoreboard.column(core::Metric::C2EP).normalized[i],
            scoreboard.column(core::Metric::CEP).normalized[i],
            scoreboard.column(core::Metric::CE2P).normalized[i],
        };
        table.addRow(designs[i].name, row, 3);
        csv.addRow(designs[i].name, row);
    }
    std::cout << table.render();

    for (core::Metric metric :
         {core::Metric::CDP, core::Metric::C2EP, core::Metric::CEP,
          core::Metric::CE2P}) {
        const bool embodied_centric = metric == core::Metric::CDP ||
                                      metric == core::Metric::C2EP;
        experiment.claim(std::string(core::metricName(metric)) +
                             " optimum",
                         embodied_centric ? "CPU" : "DSP",
                         scoreboard.winner(metric));
    }
    experiment.note("the CPU-only SoC avoids co-processor silicon; the "
                    "DSP's efficiency wins once operational emissions "
                    "dominate");

    if (options.csv)
        std::cout << csv.toString();
    return 0;
}
