/**
 * @file
 * Figure 14: annual mobile energy-efficiency improvement per SoC
 * family (left) and the 10-year fleet footprint as a function of
 * device lifetime (right), with the ~5-year optimum.
 */

#include <iostream>

#include "mobile/fleet.h"
#include "report/experiment.h"
#include "util/chart.h"
#include "util/csv.h"
#include "util/strings.h"
#include "util/table.h"

int
main(int argc, char **argv)
{
    using namespace act;
    const auto options = report::parseOptions(argc, argv);
    report::Experiment experiment(
        "Figure 14", "extending mobile lifetimes to balance emissions");

    experiment.section("left: annual energy-efficiency improvement");
    util::Table families({"Family", "Annual improvement"});
    for (data::SocFamily family : {data::SocFamily::Snapdragon,
                                   data::SocFamily::Exynos,
                                   data::SocFamily::Kirin}) {
        families.addRow(std::string(data::familyName(family)),
                        {mobile::familyEfficiencyGrowth(family)});
    }
    families.addSeparator();
    families.addRow("Geomean", {mobile::annualEfficiencyImprovement()});
    std::cout << families.render();
    experiment.claim("mean annual efficiency improvement", "1.21x",
                     util::formatSig(
                         mobile::annualEfficiencyImprovement(), 3) +
                         "x");

    experiment.section("right: 10-year fleet footprint vs lifetime");
    const core::FabParams fab;
    const mobile::FleetParams params = mobile::defaultFleetParams(fab);
    const auto sweep = mobile::lifetimeSweep(params);

    util::Table table({"Lifetime (y)", "Embodied (kg)",
                       "Operational (kg)", "Total (kg)"});
    util::CsvWriter csv({"lifetime_years", "embodied_kg",
                         "operational_kg", "total_kg"});
    std::vector<util::StackedBarEntry> bars;
    for (const auto &point : sweep) {
        table.addRow(util::formatFixed(point.lifetime_years, 0),
                     {util::asKilograms(point.embodied),
                      util::asKilograms(point.operational),
                      util::asKilograms(point.total())});
        csv.addRow(util::formatFixed(point.lifetime_years, 0),
                   {util::asKilograms(point.embodied),
                    util::asKilograms(point.operational),
                    util::asKilograms(point.total())});
        bars.push_back({util::formatFixed(point.lifetime_years, 0) + "y",
                        util::asKilograms(point.embodied),
                        util::asKilograms(point.operational)});
    }
    std::cout << table.render();
    std::cout << util::renderStackedBarChart(
        "Fleet footprint over 10 years (kg CO2)", "embodied",
        "operational", bars);

    const std::size_t best = mobile::optimalLifetimeIndex(sweep);
    experiment.claim("optimal lifetime", "~5 years",
                     util::formatFixed(sweep[best].lifetime_years, 0) +
                         " years");
    const double current = std::sqrt(
        util::asKilograms(sweep[1].total()) *
        util::asKilograms(sweep[2].total()));
    experiment.claim(
        "improvement vs current 2-3 year lifetimes", "1.26x",
        util::formatSig(current / util::asKilograms(sweep[best].total()),
                        3) + "x");

    if (options.csv)
        std::cout << csv.toString();
    return 0;
}
