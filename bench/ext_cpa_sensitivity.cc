/**
 * @file
 * Extension study: tornado sensitivity of the Eq. 5 carbon-per-area
 * estimate over the Table 1 parameter ranges -- which fab inputs
 * dominate the uncertainty in embodied-carbon estimates.
 */

#include <iostream>

#include "core/embodied.h"
#include "core/eval_plan.h"
#include "dse/montecarlo.h"
#include "dse/sensitivity.h"
#include "report/experiment.h"
#include "util/chart.h"
#include "util/csv.h"
#include "util/strings.h"
#include "util/table.h"

int
main(int argc, char **argv)
{
    using namespace act;
    const auto options = report::parseOptions(argc, argv);
    report::Experiment experiment(
        "Extension: CPA sensitivity",
        "tornado analysis of Eq. 5 over Table 1 ranges");

    const auto &fab_db = data::FabDatabase::instance();
    util::CsvWriter csv({"node", "parameter", "low", "high"});

    // All five Eq. 5 terms are themselves the uncertain inputs here,
    // so both studies compile one raw-term plan and evaluate every
    // spoke/sample through its batch kernel (values identical to the
    // former inline (ci*epa + gpa + mpa)/yield closure).
    const std::vector<core::EvalInput> bindings = {
        core::EvalInput::CiFab, core::EvalInput::Epa,
        core::EvalInput::Gpa, core::EvalInput::Mpa,
        core::EvalInput::Yield};

    for (double nm : {7.0, 28.0}) {
        experiment.section("CPA at " + util::formatFixed(nm, 0) +
                           " nm (g CO2/cm2)");
        const double epa = fab_db.epa(nm).value();
        const double gpa95 = fab_db.gpa(nm, 0.95).value();
        const double gpa99 = fab_db.gpa(nm, 0.99).value();
        const std::vector<dse::ParameterRange> parameters = {
            // Fab energy: solar fab ... Taiwan grid (Fig. 6 band).
            {"CI_fab", data::defaultFabIntensity().value(), 41.0,
             583.0},
            // Device characterization uncertainty on EPA (+/-20%).
            {"EPA", epa, epa * 0.8, epa * 1.2},
            // Abatement band: 99% ... 95% (Table 7 columns).
            {"GPA", (gpa95 + gpa99) / 2.0, gpa99, gpa95},
            // LCA-derived raw materials (+/-20%).
            {"MPA", 500.0, 400.0, 600.0},
            // Yield from a struggling ramp to mature.
            {"yield", 0.875, 0.6, 0.95},
        };
        const core::EvalPlan plan = core::EvalPlan::forRawCpa(
            {parameters[0].baseline, parameters[1].baseline,
             parameters[2].baseline, parameters[3].baseline,
             parameters[4].baseline},
            bindings);
        const auto entries = dse::tornado(parameters, plan);

        std::vector<util::BarEntry> bars;
        util::Table table({"Parameter", "CPA @ low", "CPA @ high",
                           "swing"});
        for (const auto &entry : entries) {
            table.addRow(entry.name,
                         {entry.output_low, entry.output_high,
                          entry.swing()});
            bars.push_back({entry.name, entry.swing(), ""});
            csv.addRow({util::formatFixed(nm, 0), entry.name,
                        util::formatSig(entry.output_low, 5),
                        util::formatSig(entry.output_high, 5)});
        }
        std::cout << table.render();
        std::cout << util::renderBarChart("swing (g CO2/cm2)", bars);

        if (nm == 7.0) {
            experiment.claim(
                "dominant CPA uncertainty at 7 nm",
                "fab energy source (Fig. 6 band)", entries[0].name);
            experiment.claim("yield outranks raw materials", "yes",
                             entries[1].name == "yield" ||
                                     entries[0].name == "yield"
                                 ? "yes"
                                 : "no");
        }
    }
    experiment.section("Monte Carlo: CPA(7nm) output distribution");
    {
        const double epa7 = fab_db.epa(7.0).value();
        const std::vector<dse::UncertainParameter> uncertain = {
            {"CI_fab", dse::Distribution::Triangular,
             data::defaultFabIntensity().value(), 41.0, 583.0},
            {"EPA", dse::Distribution::Triangular, epa7, epa7 * 0.8,
             epa7 * 1.2},
            {"GPA", dse::Distribution::Uniform,
             fab_db.gpa(7.0).value(), fab_db.gpa(7.0, 0.99).value(),
             fab_db.gpa(7.0, 0.95).value()},
            {"MPA", dse::Distribution::Uniform, 500.0, 400.0, 600.0},
            {"yield", dse::Distribution::Triangular, 0.875, 0.6, 0.95},
        };
        const core::EvalPlan plan = core::EvalPlan::forRawCpa(
            {uncertain[0].baseline, uncertain[1].baseline,
             uncertain[2].baseline, uncertain[3].baseline,
             uncertain[4].baseline},
            bindings);
        const auto mc = dse::monteCarloBatch(uncertain, plan);
        util::Table stats({"Statistic", "CPA (g CO2/cm2)"});
        stats.addRow("mean", {mc.mean});
        stats.addRow("stddev", {mc.stddev});
        stats.addRow("p5", {mc.p5});
        stats.addRow("median", {mc.p50});
        stats.addRow("p95", {mc.p95});
        std::cout << stats.render();
        const core::FabParams fab;
        experiment.claim(
            "deterministic CPA(7nm) inside the 90% band",
            "yes",
            core::carbonPerArea(fab, 7.0).value() > mc.p5 &&
                    core::carbonPerArea(fab, 7.0).value() < mc.p95
                ? "yes"
                : "no");
    }

    experiment.note("decarbonizing fab energy is the single largest "
                    "lever on embodied estimates; publishing measured "
                    "yield and EPA would cut the remaining uncertainty "
                    "-- ACT's call to action to industry");

    if (options.csv)
        std::cout << csv.toString();
    return 0;
}
