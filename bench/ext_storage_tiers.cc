/**
 * @file
 * Extension study: HDD vs SSD tier selection as a carbon decision.
 * Fig. 7's per-GB embodied numbers favor disks; throughput targets
 * force capacity over-provisioning that flips the comparison.
 */

#include <iostream>

#include "report/experiment.h"
#include "server/storage_tier.h"
#include "util/csv.h"
#include "util/strings.h"
#include "util/table.h"

int
main(int argc, char **argv)
{
    using namespace act;
    const auto options = report::parseOptions(argc, argv);
    report::Experiment experiment(
        "Extension: storage tiers",
        "HDD vs SSD whole-life carbon vs throughput demand");

    const server::StorageTier hdd = server::enterpriseHddTier();
    const server::StorageTier ssd = server::datacenterSsdTier();
    const core::OperationalParams use;
    const util::Duration life = util::years(5.0);

    server::StorageDemand demand;
    demand.capacity = util::terabytes(100.0);
    demand.duty = 0.3;

    experiment.section("100 TB tier, 5-year life, US grid");
    util::Table table({"Throughput (MB/s)", "HDD total (t CO2)",
                       "SSD total (t CO2)", "winner"});
    util::CsvWriter csv({"throughput_mbps", "hdd_t", "ssd_t"});
    for (double mbps : {0.0, 500.0, 1000.0, 2000.0, 5000.0, 10000.0,
                        20000.0}) {
        demand.throughput_mbps = mbps;
        const double hdd_t = util::asGrams(
            server::tierFootprint(hdd, demand, life, use).total()) /
            1e6;
        const double ssd_t = util::asGrams(
            server::tierFootprint(ssd, demand, life, use).total()) /
            1e6;
        table.addRow({util::formatFixed(mbps, 0),
                      util::formatSig(hdd_t, 4),
                      util::formatSig(ssd_t, 4),
                      hdd_t < ssd_t ? "HDD" : "SSD"});
        csv.addRow(util::formatFixed(mbps, 0), {hdd_t, ssd_t});
    }
    std::cout << table.render();

    demand.throughput_mbps = 0.0;
    const auto crossover =
        server::throughputCrossover(hdd, ssd, demand, life, use);
    experiment.claim("cold archives favor disks", "HDD",
                     util::asGrams(server::tierFootprint(hdd, demand,
                                                         life, use)
                                       .total()) <
                             util::asGrams(
                                 server::tierFootprint(ssd, demand,
                                                       life, use)
                                     .total())
                         ? "HDD"
                         : "SSD");
    experiment.claim(
        "flash overtakes disk at a finite throughput demand",
        "crossover exists",
        crossover ? util::formatSig(*crossover, 4) + " MB/s"
                  : "none");

    const auto green_crossover = server::throughputCrossover(
        hdd, ssd, demand, life,
        core::OperationalParams::forSource(
            data::EnergySource::CarbonFree));
    experiment.claim(
        "a carbon-free grid moves the crossover higher",
        "higher than the US-grid crossover",
        green_crossover && crossover && *green_crossover > *crossover
            ? "yes (" + util::formatSig(*green_crossover, 4) + " MB/s)"
            : "no");
    experiment.note("per-byte embodied carbon (Fig. 7) decides cold "
                    "tiers; per-throughput provisioning decides hot "
                    "ones -- the same Eq. 1 balance as the compute "
                    "case studies");

    if (options.csv)
        std::cout << csv.toString();
    return 0;
}
