/**
 * @file
 * Figure 4: bottom-up ACT estimates of the IC embodied footprint for
 * the iPhone 11 and iPad, with the per-IC category breakdown that the
 * opaque top-down LCA estimates (23/28 kg) cannot provide.
 */

#include <iostream>

#include "core/embodied.h"
#include "report/experiment.h"
#include "util/chart.h"
#include "util/csv.h"
#include "util/strings.h"
#include "util/table.h"

int
main(int argc, char **argv)
{
    using namespace act;
    const auto options = report::parseOptions(argc, argv);
    report::Experiment experiment(
        "Figure 4", "per-IC embodied carbon: ACT bottom-up vs LCA "
                    "top-down for iPhone 11 and iPad");

    const core::EmbodiedModel model;
    const auto &db = data::DeviceDatabase::instance();

    util::CsvWriter csv({"device", "category", "kg_co2"});
    for (const char *name : {"iPhone 11", "iPad"}) {
        const auto device = db.byNameOrDie(name);
        const core::DeviceFootprint footprint = model.evaluate(device);

        experiment.section(device.name);
        std::vector<util::BarEntry> bars;
        for (data::IcCategory category :
             {data::IcCategory::MainSoc, data::IcCategory::CameraIc,
              data::IcCategory::Dram, data::IcCategory::Flash,
              data::IcCategory::OtherIc}) {
            const double kg =
                util::asKilograms(footprint.categoryTotal(category));
            if (kg == 0.0)
                continue;
            bars.push_back(
                {std::string(data::icCategoryName(category)), kg, ""});
            csv.addRow({device.name,
                        std::string(data::icCategoryName(category)),
                        util::formatSig(kg, 4)});
        }
        bars.push_back({"IC packaging",
                        util::asKilograms(footprint.packaging), ""});
        std::cout << util::renderBarChart(
            "IC embodied carbon by category (kg CO2)", bars);

        util::Table detail({"IC", "kg CO2"});
        for (const auto &component : footprint.components) {
            detail.addRow(component.name,
                          {util::asKilograms(component.embodied)});
        }
        detail.addSeparator();
        detail.addRow("packaging (Nr=" +
                          std::to_string(footprint.package_count) + ")",
                      {util::asKilograms(footprint.packaging)});
        detail.addRow("TOTAL (ACT bottom-up)",
                      {util::asKilograms(footprint.total())});
        detail.addRow("LCA top-down estimate",
                      {util::asKilograms(device.lca.icEstimate())});
        std::cout << detail.render();
    }

    const auto iphone = db.byNameOrDie("iPhone 11");
    const auto ipad = db.byNameOrDie("iPad");
    experiment.claim("iPhone 11 ACT IC estimate", "17 kg",
                     util::formatSig(util::asKilograms(
                         model.evaluate(iphone).total()), 3) + " kg");
    experiment.claim("iPhone 11 LCA top-down", "23 kg",
                     util::formatSig(util::asKilograms(
                         iphone.lca.icEstimate()), 3) + " kg");
    experiment.claim("iPad ACT IC estimate", "21 kg",
                     util::formatSig(util::asKilograms(
                         model.evaluate(ipad).total()), 3) + " kg");
    experiment.claim("iPad LCA top-down", "28 kg",
                     util::formatSig(util::asKilograms(
                         ipad.lca.icEstimate()), 3) + " kg");

    if (options.csv)
        std::cout << csv.toString();
    return 0;
}
