/**
 * @file
 * Figure 12: the NVDLA-class NPU design space at 16 nm, sweeping the
 * MAC array from 64 to 2048. Performance and EDP favor the most
 * parallel design; the carbon-aware metrics favor successively leaner
 * arrays (CDP 1024, CE2P 512, CEP 256, C2EP 128).
 */

#include <iostream>

#include "accel/design_space.h"
#include "dse/scoreboard.h"
#include "report/experiment.h"
#include "util/csv.h"
#include "util/strings.h"
#include "util/table.h"

int
main(int argc, char **argv)
{
    using namespace act;
    const auto options = report::parseOptions(argc, argv);
    report::Experiment experiment(
        "Figure 12", "carbon-aware NPU design space (NVDLA-class)");

    const accel::NpuModel model;
    const core::FabParams fab;
    const auto entries = accel::sweepDesignSpace(model, 16.0, fab);

    experiment.section("swept configurations");
    util::Table table({"MACs", "FPS", "Utilization", "Energy (mJ)",
                       "Area (mm2)", "Embodied (g)"});
    util::CsvWriter csv({"macs", "fps", "utilization", "energy_mj",
                         "area_mm2", "embodied_g"});
    std::vector<core::DesignPoint> points;
    for (const auto &entry : entries) {
        const std::vector<double> row = {
            static_cast<double>(entry.evaluation.config.mac_count),
            entry.evaluation.frames_per_second,
            entry.evaluation.utilization,
            util::asMillijoules(entry.evaluation.energy_per_frame),
            util::asSquareMillimeters(entry.evaluation.area),
            util::asGrams(entry.embodied),
        };
        table.addRow(std::to_string(entry.evaluation.config.mac_count),
                     {row[1], row[2], row[3], row[4], row[5]});
        csv.addRow(std::to_string(entry.evaluation.config.mac_count),
                   {row[1], row[2], row[3], row[4], row[5]});
        points.push_back(entry.design_point);
    }
    std::cout << table.render();

    experiment.section("metric winners");
    const dse::Scoreboard scoreboard(points);
    util::Table winners({"Metric", "Optimal configuration"});
    for (core::Metric metric : core::allMetrics()) {
        winners.addRow({std::string(core::metricName(metric)),
                        scoreboard.winner(metric)});
    }
    std::cout << winners.render();

    experiment.claim("performance/EDP optimum", "2048 MACs",
                     scoreboard.winner(core::Metric::EDP));
    experiment.claim("CDP optimum", "1024 MACs",
                     scoreboard.winner(core::Metric::CDP));
    experiment.claim("CE2P optimum", "512 MACs",
                     scoreboard.winner(core::Metric::CE2P));
    experiment.claim("CEP optimum", "256 MACs",
                     scoreboard.winner(core::Metric::CEP));
    experiment.claim("C2EP optimum", "128 MACs",
                     scoreboard.winner(core::Metric::C2EP));

    // "optimizing directly for sustainability reduces the carbon
    // targets by up to 10x" (vs the performance-optimal 2048-MAC
    // design, under the C2EP target).
    const auto &c2ep = scoreboard.column(core::Metric::C2EP);
    const double reduction =
        c2ep.values.back() / c2ep.values[c2ep.best_index];
    experiment.claim(
        "carbon-target reduction vs 2048-MAC design", "up to ~10x",
        util::formatSig(reduction, 3) + "x (C2EP)");

    if (options.ablation) {
        experiment.section("ablation: workload sensitivity "
                           "(mapper-friendly wide backbone)");
        const auto wide = accel::sweepDesignSpace(
            model, accel::wideVisionNetwork(), 16.0, fab);
        std::vector<core::DesignPoint> wide_points;
        util::Table wide_table({"MACs", "FPS", "Utilization",
                                "Energy (mJ)"});
        for (const auto &entry : wide) {
            wide_table.addRow(
                std::to_string(entry.evaluation.config.mac_count),
                {entry.evaluation.frames_per_second,
                 entry.evaluation.utilization,
                 util::asMillijoules(
                     entry.evaluation.energy_per_frame)});
            wide_points.push_back(entry.design_point);
        }
        std::cout << wide_table.render();
        const dse::Scoreboard wide_scoreboard(wide_points);
        util::Table wide_winners({"Metric", "dense backbone",
                                  "wide backbone"});
        for (core::Metric metric : core::allMetrics()) {
            wide_winners.addRow(
                {std::string(core::metricName(metric)),
                 scoreboard.winner(metric),
                 wide_scoreboard.winner(metric)});
        }
        std::cout << wide_winners.render();
        experiment.note("well-mapped wide workloads keep scaling on "
                        "large arrays, pulling every optimum towards "
                        "more MACs -- the carbon-optimal design is "
                        "workload-dependent");
    }

    if (options.csv)
        std::cout << csv.toString();
    return 0;
}
