/**
 * @file
 * Figure 6: fab energy per area (top), gas emissions per area with
 * abatement bands (middle), and total carbon per area with fab-energy
 * bands (bottom), for logic nodes from 28 nm down to 3 nm.
 *
 * --ablation additionally prints interpolated vs nearest-anchor CPA for
 * off-anchor nodes (the DESIGN.md node-lookup ablation).
 */

#include <iostream>

#include "core/embodied.h"
#include "report/experiment.h"
#include "util/csv.h"
#include "util/strings.h"
#include "util/table.h"

int
main(int argc, char **argv)
{
    using namespace act;
    const auto options = report::parseOptions(argc, argv);
    report::Experiment experiment(
        "Figure 6",
        "embodied carbon intensity of logic manufacturing, 28nm -> 3nm");

    const auto &db = data::FabDatabase::instance();
    const std::vector<double> nodes = {28.0, 20.0, 14.0, 10.0,
                                       7.0, 5.0, 3.0};

    experiment.section("EPA and GPA per node (Table 7 anchors)");
    util::Table table({"Node (nm)", "EPA (kWh/cm2)", "GPA@95% (g/cm2)",
                       "GPA@97% (g/cm2)", "GPA@99% (g/cm2)"});
    for (double nm : nodes) {
        table.addRow(util::formatFixed(nm, 0),
                     {db.epa(nm).value(), db.gpa(nm, 0.95).value(),
                      db.gpa(nm, 0.97).value(), db.gpa(nm, 0.99).value()});
    }
    std::cout << table.render();

    experiment.section("CPA bands (Eq. 5), g CO2 per cm2");
    util::Table cpa_table({"Node (nm)", "renewable fab",
                           "25% renewable (default)", "Taiwan grid"});
    util::CsvWriter csv({"node_nm", "cpa_renewable", "cpa_default",
                         "cpa_taiwan"});
    const core::FabParams renewable = core::FabParams::renewable();
    const core::FabParams base;
    const core::FabParams taiwan = core::FabParams::taiwanGrid();
    for (double nm : nodes) {
        const double lo = core::carbonPerArea(renewable, nm).value();
        const double mid = core::carbonPerArea(base, nm).value();
        const double hi = core::carbonPerArea(taiwan, nm).value();
        cpa_table.addRow(util::formatFixed(nm, 0), {lo, mid, hi});
        csv.addRow(util::formatFixed(nm, 0), {lo, mid, hi});
    }
    std::cout << cpa_table.render();

    experiment.claim(
        "EPA rises from 28nm to 3nm", "0.90 -> 2.75 kWh/cm2",
        util::formatSig(db.epa(28.0).value(), 3) + " -> " +
            util::formatSig(db.epa(3.0).value(), 3) + " kWh/cm2");
    experiment.claim(
        "CPA monotonically increases towards newer nodes", "yes",
        core::carbonPerArea(base, 3.0).value() >
                core::carbonPerArea(base, 28.0).value()
            ? "yes"
            : "no");
    experiment.note("default line assumes a fab on the Taiwan grid with "
                    "25% renewable procurement and 97% gas abatement");

    if (options.ablation) {
        experiment.section(
            "Ablation: interpolated vs nearest-anchor lookup");
        util::Table ablation({"Node (nm)", "CPA interpolated",
                              "CPA nearest anchor", "delta %"});
        core::FabParams nearest = base;
        nearest.lookup = data::NodeLookup::NearestAnchor;
        for (double nm : {24.0, 16.0, 12.0, 8.0, 6.0, 4.0}) {
            const double interp =
                core::carbonPerArea(base, nm).value();
            const double anchor =
                core::carbonPerArea(nearest, nm).value();
            ablation.addRow(
                util::formatFixed(nm, 0),
                {interp, anchor, (anchor / interp - 1.0) * 100.0});
        }
        std::cout << ablation.render();
    }

    if (options.csv)
        std::cout << csv.toString();
    return 0;
}
