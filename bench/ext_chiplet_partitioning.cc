/**
 * @file
 * Extension study (Reuse tenet, Fig. 1 "chiplet design"): when does
 * partitioning a large die into chiplets lower embodied carbon? Sweeps
 * die size, defect density, and yield model; also serves as the
 * computed-yield ablation of Table 1's scalar Y parameter.
 */

#include <iostream>

#include "pkg/chiplet.h"
#include "report/experiment.h"
#include "util/csv.h"
#include "util/strings.h"
#include "util/table.h"

int
main(int argc, char **argv)
{
    using namespace act;
    const auto options = report::parseOptions(argc, argv);
    report::Experiment experiment(
        "Extension: chiplets",
        "monolithic vs chiplet embodied carbon at 7 nm");

    const core::FabParams fab;
    pkg::ChipletParams params;
    params.defects.defect_density_per_cm2 = 0.15;

    experiment.section("embodied carbon vs partitioning (kg CO2)");
    util::Table table({"Die (mm2)", "N=1", "N=2", "N=4", "N=8",
                       "optimal N"});
    util::CsvWriter csv({"die_mm2", "n", "total_g", "yield"});
    for (double mm2 : {100.0, 200.0, 400.0, 600.0, 800.0}) {
        const auto sweep = pkg::chipletSweep(
            util::squareMillimeters(mm2), 7.0, fab, params);
        const std::size_t best = pkg::optimalChipletCount(sweep);
        table.addRow(util::formatFixed(mm2, 0),
                     {util::asKilograms(sweep[0].total()),
                      util::asKilograms(sweep[1].total()),
                      util::asKilograms(sweep[3].total()),
                      util::asKilograms(sweep[7].total()),
                      static_cast<double>(
                          sweep[best].num_chiplets)});
        for (const auto &point : sweep) {
            csv.addRow(util::formatFixed(mm2, 0),
                       {static_cast<double>(point.num_chiplets),
                        util::asGrams(point.total()),
                        point.chiplet_yield});
        }
    }
    std::cout << table.render();

    experiment.section("sensitivity to defect density (600 mm2 die)");
    util::Table density({"D0 (/cm2)", "optimal N", "saving vs "
                                                   "monolithic"});
    for (double d0 : {0.05, 0.10, 0.15, 0.25, 0.40}) {
        pkg::ChipletParams p = params;
        p.defects.defect_density_per_cm2 = d0;
        const auto sweep = pkg::chipletSweep(
            util::squareMillimeters(600.0), 7.0, fab, p);
        const std::size_t best = pkg::optimalChipletCount(sweep);
        density.addRow(util::formatSig(d0, 2),
                       {static_cast<double>(sweep[best].num_chiplets),
                        util::asGrams(sweep[0].total()) /
                            util::asGrams(sweep[best].total())});
    }
    std::cout << density.render();

    const auto big = pkg::chipletSweep(util::squareMillimeters(800.0),
                                        7.0, fab, params);
    const auto small = pkg::chipletSweep(
        util::squareMillimeters(100.0), 7.0, fab, params);
    experiment.claim(
        "small dies stay monolithic", "N = 1",
        "N = " + std::to_string(
                     small[pkg::optimalChipletCount(small)]
                         .num_chiplets));
    experiment.claim(
        "800 mm2 die benefits from chiplets", "> 1.5x saving",
        util::formatSig(
            util::asGrams(big[0].total()) /
                util::asGrams(
                    big[pkg::optimalChipletCount(big)].total()),
            3) + "x");
    experiment.note("yield recovered from smaller dies must outweigh "
                    "interface beachfront, interposer silicon, and "
                    "assembly carbon -- all three are modeled");

    if (options.csv)
        std::cout << csv.toString();
    return 0;
}
