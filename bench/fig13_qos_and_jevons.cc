/**
 * @file
 * Figure 13: QoS-driven sustainability design (left) and
 * resource-constrained design across nodes (right).
 *
 * Left: under a 30 FPS QoS target the carbon-minimal NPU uses 256
 * MACs; the performance- and energy-optimal configurations
 * over-provision and incur higher embodied footprints.
 *
 * Right: under 1 and 2 mm2 area budgets, moving from 28 nm to 16 nm
 * *increases* the embodied footprint -- Jevons paradox: the newer node
 * packs more MACs into the budget and is dirtier per unit area.
 */

#include <iostream>

#include "accel/design_space.h"
#include "report/experiment.h"
#include "util/csv.h"
#include "util/strings.h"
#include "util/table.h"

int
main(int argc, char **argv)
{
    using namespace act;
    const auto options = report::parseOptions(argc, argv);
    report::Experiment experiment(
        "Figure 13", "QoS-driven and area-budgeted NPU design");

    const accel::NpuModel model;
    const core::FabParams fab;
    util::CsvWriter csv({"study", "node_nm", "macs", "fps",
                         "embodied_g"});

    experiment.section("left: 30 FPS QoS target at 16 nm");
    const accel::QosStudy qos = accel::qosStudy(model, 16.0, fab);
    util::Table qos_table({"Optimum", "MACs", "FPS", "Embodied (g)",
                           "vs carbon-optimal"});
    const auto add_optimum = [&](const std::string &label,
                                 const accel::SweepEntry &entry) {
        qos_table.addRow(
            label,
            {static_cast<double>(entry.evaluation.config.mac_count),
             entry.evaluation.frames_per_second,
             util::asGrams(entry.embodied),
             entry.embodied / qos.carbon_optimal->embodied});
        csv.addRow(label,
                   {16.0,
                    static_cast<double>(
                        entry.evaluation.config.mac_count),
                    entry.evaluation.frames_per_second,
                    util::asGrams(entry.embodied)});
    };
    add_optimum("carbon (QoS)", *qos.carbon_optimal);
    add_optimum("energy", qos.energy_optimal);
    add_optimum("performance", qos.performance_optimal);
    std::cout << qos_table.render();

    experiment.claim("carbon-optimal config at 30 FPS", "256 MACs",
                     std::to_string(qos.carbon_optimal->evaluation
                                        .config.mac_count) + " MACs");
    experiment.claim("carbon-optimal embodied footprint", "16 g CO2",
                     util::formatSig(util::asGrams(
                         qos.carbon_optimal->embodied), 3) + " g");
    experiment.claim("performance-optimal embodied overhead", "3.3x",
                     util::formatSig(qos.performanceOverhead(), 3) +
                         "x");
    experiment.claim("energy-optimal embodied overhead", "1.4x",
                     util::formatSig(qos.energyOverhead(), 3) + "x");
    experiment.claim(
        "performance optimum exceeds the QoS target", "9x",
        util::formatSig(qos.performance_optimal.evaluation
                                .frames_per_second / qos.qos_fps, 2) +
            "x");
    experiment.claim(
        "energy optimum exceeds the QoS target", "3x",
        util::formatSig(qos.energy_optimal.evaluation.frames_per_second /
                            qos.qos_fps, 2) + "x");

    experiment.section("right: area budgets, 28 nm vs 16 nm");
    util::Table budget_table({"Budget", "Node", "Best config (MACs)",
                              "Area used (mm2)", "Embodied (g)"});
    for (double budget : {1.0, 2.0}) {
        accel::BudgetEntry entries[2] = {
            accel::budgetStudy(model, 28.0, budget, fab),
            accel::budgetStudy(model, 16.0, budget, fab),
        };
        for (const auto &entry : entries) {
            if (!entry.best)
                continue;
            budget_table.addRow(
                util::formatFixed(budget, 0) + " mm2",
                {entry.node_nm,
                 static_cast<double>(
                     entry.best->evaluation.config.mac_count),
                 util::asSquareMillimeters(entry.best->evaluation.area),
                 util::asGrams(entry.best->embodied)});
            csv.addRow("budget-" + util::formatFixed(budget, 0) + "mm2",
                       {entry.node_nm,
                        static_cast<double>(
                            entry.best->evaluation.config.mac_count),
                        entry.best->evaluation.frames_per_second,
                        util::asGrams(entry.best->embodied)});
        }
        budget_table.addSeparator();
        const double ratio =
            util::asGrams(entries[1].best->embodied) /
            util::asGrams(entries[0].best->embodied);
        experiment.claim(
            "16 nm footprint increase at " +
                util::formatFixed(budget, 0) + " mm2",
            budget == 1.0 ? "+33%" : "+28%",
            (ratio >= 1.0 ? "+" : "") +
                util::formatSig((ratio - 1.0) * 100.0, 3) + "%");
    }
    std::cout << budget_table.render();
    experiment.note("Jevons paradox: node scaling alone does not lower "
                    "embodied footprints when the freed area is "
                    "immediately re-spent on more compute");

    if (options.csv)
        std::cout << csv.toString();
    return 0;
}
