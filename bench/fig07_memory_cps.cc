/**
 * @file
 * Figure 7: embodied carbon per gigabyte for DRAM (left), NAND SSDs
 * (center), and HDDs (right). Device-level characterization (black
 * bars in the paper) is tagged [device]; component-level vendor
 * analyses (grey bars) are tagged [vendor].
 */

#include <iostream>

#include "data/memory_db.h"
#include "report/experiment.h"
#include "util/chart.h"
#include "util/csv.h"
#include "util/strings.h"

int
main(int argc, char **argv)
{
    using namespace act;
    const auto options = report::parseOptions(argc, argv);
    report::Experiment experiment(
        "Figure 7", "carbon per GB across memory/storage technologies");

    util::CsvWriter csv({"class", "technology", "g_co2_per_gb",
                         "characterization"});
    const auto render = [&](data::StorageClass cls,
                            const std::string &title) {
        std::vector<util::BarEntry> bars;
        for (const auto &record : data::storageTable(cls)) {
            const bool device_level =
                record.characterization ==
                data::Characterization::DeviceLevel;
            bars.push_back({record.name, record.cps.value(),
                            device_level ? "[device]" : "[vendor]"});
            csv.addRow({title, record.name,
                        util::formatSig(record.cps.value(), 5),
                        device_level ? "device" : "vendor"});
        }
        std::cout << util::renderBarChart(title + " (g CO2/GB)", bars);
    };

    experiment.section("DRAM (Table 9)");
    render(data::StorageClass::Dram, "DRAM");
    experiment.section("SSD (Table 10)");
    render(data::StorageClass::Ssd, "SSD");
    experiment.section("HDD (Table 11)");
    render(data::StorageClass::Hdd, "HDD");

    experiment.claim(
        "DRAM dirtier than SSD at commensurate nodes", "yes",
        data::storageOrDie("10nm DDR4").cps.value() >
                data::storageOrDie("10nm NAND").cps.value()
            ? "yes"
            : "no");
    experiment.claim(
        "newer DRAM/SSD nodes lower carbon per GB", "yes",
        data::storageOrDie("50nm DDR3").cps.value() >
                    data::storageOrDie("10nm DDR4").cps.value() &&
                data::storageOrDie("30nm NAND").cps.value() >
                    data::storageOrDie("1z NAND TLC").cps.value()
            ? "yes"
            : "no");

    if (options.csv)
        std::cout << csv.toString();
    return 0;
}
