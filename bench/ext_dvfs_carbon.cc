/**
 * @file
 * Extension study (Reduce tenet, Fig. 1 "DVFS"): the carbon-optimal
 * DVFS operating point. Under Eq. 1 the device's embodied footprint is
 * charged for occupancy time, so the carbon optimum sits above the
 * energy optimum and slides to race-to-idle as the grid gets greener.
 */

#include <iostream>

#include "mobile/dvfs.h"
#include "report/experiment.h"
#include "util/csv.h"
#include "util/strings.h"
#include "util/table.h"

int
main(int argc, char **argv)
{
    using namespace act;
    const auto options = report::parseOptions(argc, argv);
    report::Experiment experiment(
        "Extension: DVFS", "carbon-optimal frequency selection");

    mobile::DvfsParams params;
    const util::Duration task = util::milliseconds(100.0);

    experiment.section("energy and footprint vs frequency "
                       "(US grid, 300 g/kWh)");
    const core::OperationalParams us;
    util::Table table({"f", "Latency (ms)", "Energy (mJ)",
                       "CF total (ug)", "embodied share"});
    util::CsvWriter csv({"f", "energy_mj", "cf_ug"});
    for (const auto &point : mobile::dvfsSweep(params, task, us, 0.2,
                                               9)) {
        table.addRow(util::formatSig(point.frequency, 3),
                     {util::asMilliseconds(point.latency),
                      util::asMillijoules(point.energy),
                      util::asMicrograms(point.footprint.total()),
                      point.footprint.embodiedShare()});
        csv.addRow(util::formatSig(point.frequency, 4),
                   {util::asMillijoules(point.energy),
                    util::asMicrograms(point.footprint.total())});
    }
    std::cout << table.render();

    experiment.section("optimal frequency vs grid carbon intensity");
    util::Table optima({"Grid", "CI (g/kWh)", "f* (energy)",
                        "f* (carbon)"});
    const double f_energy =
        mobile::energyOptimalFrequency(params, task);
    for (data::EnergySource source :
         {data::EnergySource::Coal, data::EnergySource::Gas,
          data::EnergySource::Solar, data::EnergySource::Wind,
          data::EnergySource::CarbonFree}) {
        const auto use = core::OperationalParams::forSource(source);
        optima.addRow(std::string(data::sourceName(source)),
                      {use.ci_use.value(), f_energy,
                       mobile::carbonOptimalFrequency(params, task,
                                                      use)});
    }
    std::cout << optima.render();

    const double f_coal = mobile::carbonOptimalFrequency(
        params, task,
        core::OperationalParams::forSource(data::EnergySource::Coal));
    const double f_free = mobile::carbonOptimalFrequency(
        params, task,
        core::OperationalParams::forSource(
            data::EnergySource::CarbonFree));
    experiment.claim("carbon optimum >= energy optimum", "yes",
                     f_coal >= f_energy - 1e-6 ? "yes" : "no");
    experiment.claim("carbon-free grid favors race-to-idle", "f* = 1.0",
                     "f* = " + util::formatSig(f_free, 3));
    experiment.note("energy-only DVFS governors under-clock on green "
                    "grids: once operational carbon vanishes, device "
                    "occupancy (embodied amortization) is the only "
                    "cost left");

    if (options.csv)
        std::cout << csv.toString();
    return 0;
}
