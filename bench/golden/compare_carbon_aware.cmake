# Runs ext_carbon_aware_scheduling (table and --csv) and byte-compares
# against the checked-in pre-refactor golden output. Guards the
# acceptance criterion that the IntensitySeries + policy-API rework of
# the 24-hour scheduling stack reproduces the original numbers exactly.
foreach(var BENCH_BIN GOLDEN_DIR WORK_DIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "missing -D${var}")
    endif()
endforeach()

execute_process(
    COMMAND ${BENCH_BIN}
    OUTPUT_FILE ${WORK_DIR}/ext_carbon_aware_scheduling.out
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "ext_carbon_aware_scheduling exited with ${rc}")
endif()
execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
        ${WORK_DIR}/ext_carbon_aware_scheduling.out
        ${GOLDEN_DIR}/ext_carbon_aware_scheduling.txt
    RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
    message(FATAL_ERROR "table output differs from golden")
endif()

execute_process(
    COMMAND ${BENCH_BIN} --csv
    OUTPUT_FILE ${WORK_DIR}/ext_carbon_aware_scheduling_csv.out
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
        "ext_carbon_aware_scheduling --csv exited with ${rc}")
endif()
execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
        ${WORK_DIR}/ext_carbon_aware_scheduling_csv.out
        ${GOLDEN_DIR}/ext_carbon_aware_scheduling_csv.txt
    RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
    message(FATAL_ERROR "csv output differs from golden")
endif()
