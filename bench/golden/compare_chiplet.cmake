# Runs ext_chiplet_partitioning (table and --csv) and byte-compares
# against the checked-in pre-pkg-refactor golden output. Guards the
# acceptance criterion that the legacy ChipletParams wrapper over the
# pkg::PackageSpec model reproduces the original numbers exactly.
foreach(var BENCH_BIN GOLDEN_DIR WORK_DIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "missing -D${var}")
    endif()
endforeach()

execute_process(
    COMMAND ${BENCH_BIN}
    OUTPUT_FILE ${WORK_DIR}/ext_chiplet_partitioning.out
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "ext_chiplet_partitioning exited with ${rc}")
endif()
execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
        ${WORK_DIR}/ext_chiplet_partitioning.out
        ${GOLDEN_DIR}/ext_chiplet_partitioning.txt
    RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
    message(FATAL_ERROR "table output differs from golden")
endif()

execute_process(
    COMMAND ${BENCH_BIN} --csv
    OUTPUT_FILE ${WORK_DIR}/ext_chiplet_partitioning_csv.out
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "ext_chiplet_partitioning --csv exited with ${rc}")
endif()
execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
        ${WORK_DIR}/ext_chiplet_partitioning_csv.out
        ${GOLDEN_DIR}/ext_chiplet_partitioning_csv.txt
    RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
    message(FATAL_ERROR "csv output differs from golden")
endif()
