/**
 * @file
 * Figure 8: the carbon-optimization design space for thirteen
 * commodity mobile SoCs. Panels (a)-(c) report aggregate speed,
 * energy, and embodied carbon; panel (d) normalizes the Table 2
 * metrics within each family and reports each metric's winner.
 */

#include <iostream>

#include "dse/scoreboard.h"
#include "mobile/platform.h"
#include "report/experiment.h"
#include "util/chart.h"
#include "util/strings.h"
#include "util/csv.h"
#include "util/table.h"

int
main(int argc, char **argv)
{
    using namespace act;
    const auto options = report::parseOptions(argc, argv);
    report::Experiment experiment(
        "Figure 8", "mobile SoC performance/energy/carbon design space");

    const core::FabParams fab;
    const auto space = mobile::mobileDesignSpace(fab);
    const auto &soc_db = data::SocDatabase::instance();

    experiment.section("(a)-(c) per-chipset characteristics");
    util::Table table({"SoC", "Node (nm)", "Die (mm2)", "DRAM (GB)",
                       "Agg. speed", "Energy (J)", "Embodied (kg)"});
    util::CsvWriter csv({"soc", "speed", "energy_j", "embodied_kg"});
    for (std::size_t i = 0; i < space.size(); ++i) {
        const auto &soc = soc_db.records()[i];
        table.addRow(soc.name,
                     {soc.node_nm,
                      util::asSquareMillimeters(soc.die_area),
                      util::asGigabytes(soc.dram_capacity),
                      soc.aggregateScore(),
                      util::asJoules(space[i].energy),
                      util::asKilograms(space[i].embodied)});
        csv.addRow(soc.name, {soc.aggregateScore(),
                              util::asJoules(space[i].energy),
                              util::asKilograms(space[i].embodied)});
    }
    std::cout << table.render();

    std::vector<util::BarEntry> carbon_bars;
    for (const auto &point : space) {
        carbon_bars.push_back(
            {point.name, util::asKilograms(point.embodied), ""});
    }
    std::cout << util::renderBarChart("(c) Embodied carbon (kg CO2)",
                                      carbon_bars);

    experiment.section("(d) normalized optimization metrics");
    const dse::Scoreboard scoreboard(space);
    util::Table metric_table({"SoC", "EDP", "EDAP", "CDP", "CEP", "C2EP",
                              "CE2P"});
    for (std::size_t i = 0; i < space.size(); ++i) {
        std::vector<double> row;
        for (core::Metric metric : core::allMetrics())
            row.push_back(scoreboard.column(metric).normalized[i]);
        metric_table.addRow(space[i].name, row, 3);
    }
    std::cout << metric_table.render();

    util::Table winners({"Metric", "Optimal design", "Use case"});
    for (core::Metric metric : core::allMetrics()) {
        winners.addRow({std::string(core::metricName(metric)),
                        scoreboard.winner(metric),
                        std::string(core::metricUseCase(metric))});
    }
    std::cout << winners.render();

    experiment.claim("EDP optimum", "Kirin 990",
                     scoreboard.winner(core::Metric::EDP));
    experiment.claim("EDAP optimum", "Snapdragon 865",
                     scoreboard.winner(core::Metric::EDAP));
    experiment.claim("CEP optimum", "Kirin 980",
                     scoreboard.winner(core::Metric::CEP));
    experiment.claim("C2EP optimum", "Kirin 980",
                     scoreboard.winner(core::Metric::C2EP));
    std::size_t min_embodied = 0;
    for (std::size_t i = 1; i < space.size(); ++i) {
        if (space[i].embodied < space[min_embodied].embodied)
            min_embodied = i;
    }
    experiment.claim("minimum embodied carbon", "Snapdragon 835",
                     space[min_embodied].name);

    if (options.csv)
        std::cout << csv.toString();
    return 0;
}
