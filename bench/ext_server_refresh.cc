/**
 * @file
 * Extension study (CDP use case, Table 2): data-center server carbon
 * accounting on a Dell R740-class platform -- annual footprint
 * composition across grids and PUEs, per-job attribution, and the
 * server-refresh interval analogue of Fig. 14.
 */

#include <iostream>

#include "report/experiment.h"
#include "server/datacenter.h"
#include "util/chart.h"
#include "util/csv.h"
#include "util/strings.h"
#include "util/table.h"

int
main(int argc, char **argv)
{
    using namespace act;
    const auto options = report::parseOptions(argc, argv);
    report::Experiment experiment(
        "Extension: servers",
        "data-center carbon accounting and refresh intervals");

    const core::FabParams fab;
    const server::ServerPlatform platform =
        server::dellR740Platform(fab);
    std::cout << platform.name << ": embodied "
              << util::formatSig(util::asKilograms(platform.embodied),
                                 4)
              << " kg CO2, " << util::asWatts(platform.idle_power)
              << "-" << util::asWatts(platform.peak_power) << " W\n";

    experiment.section("annual footprint vs grid (PUE 1.2, 50% util)");
    std::vector<util::StackedBarEntry> bars;
    util::CsvWriter csv({"grid", "operational_kg", "embodied_kg"});
    for (data::EnergySource source :
         {data::EnergySource::Coal, data::EnergySource::Gas,
          data::EnergySource::Solar, data::EnergySource::Wind}) {
        server::DatacenterParams dc;
        dc.grid = core::OperationalParams::forSource(source);
        const auto footprint = server::annualFootprint(platform, dc);
        bars.push_back({std::string(data::sourceName(source)),
                        util::asKilograms(footprint.embodied_allocated),
                        util::asKilograms(footprint.operational)});
        csv.addRow(std::string(data::sourceName(source)),
                   {util::asKilograms(footprint.operational),
                    util::asKilograms(footprint.embodied_allocated)});
    }
    std::cout << util::renderStackedBarChart(
        "Annual server footprint (kg CO2)", "embodied", "operational",
        bars);

    experiment.section("per-job attribution (1 CPU-hour, full load)");
    util::Table jobs({"Grid", "Job footprint (g CO2)",
                      "embodied share"});
    for (data::EnergySource source :
         {data::EnergySource::Coal, data::EnergySource::Wind}) {
        server::DatacenterParams dc;
        dc.grid = core::OperationalParams::forSource(source);
        const auto job =
            server::jobFootprint(platform, dc, util::hours(1.0));
        jobs.addRow(std::string(data::sourceName(source)),
                    {util::asGrams(job.total()), job.embodiedShare()});
    }
    std::cout << jobs.render();

    experiment.section("refresh-interval sweep (12-year horizon)");
    util::Table refresh({"Grid", "Optimal refresh (y)",
                         "vs 3-year refresh"});
    for (data::EnergySource source :
         {data::EnergySource::Coal, data::EnergySource::Gas,
          data::EnergySource::Wind}) {
        server::DatacenterParams dc;
        dc.grid = core::OperationalParams::forSource(source);
        const auto sweep = server::refreshSweep(platform, dc);
        const std::size_t best = core::optimalReplacementIndex(sweep);
        refresh.addRow(std::string(data::sourceName(source)),
                       {sweep[best].lifetime_years,
                        util::asGrams(sweep[2].total()) /
                            util::asGrams(sweep[best].total())});
    }
    std::cout << refresh.render();

    server::DatacenterParams coal;
    coal.grid =
        core::OperationalParams::forSource(data::EnergySource::Coal);
    server::DatacenterParams wind;
    wind.grid =
        core::OperationalParams::forSource(data::EnergySource::Wind);
    const auto coal_sweep = server::refreshSweep(platform, coal);
    const auto wind_sweep = server::refreshSweep(platform, wind);
    experiment.claim(
        "greener grids extend the optimal refresh interval",
        "longer on wind than coal",
        util::formatFixed(
            coal_sweep[core::optimalReplacementIndex(coal_sweep)]
                .lifetime_years, 0) + "y (coal) vs " +
            util::formatFixed(
                wind_sweep[core::optimalReplacementIndex(wind_sweep)]
                    .lifetime_years, 0) + "y (wind)");
    experiment.note("once the grid is clean, embodied emissions "
                    "dominate server footprints and holding hardware "
                    "longer is the sustainable policy -- the server "
                    "analogue of the paper's Recycle tenet");

    if (options.csv)
        std::cout << csv.toString();
    return 0;
}
