/**
 * @file
 * Tables 9-11: embodied carbon per gigabyte for DRAM, SSD, and HDD
 * technologies, printed in the paper's table layout.
 */

#include <iostream>

#include "data/memory_db.h"
#include "report/experiment.h"
#include "util/csv.h"
#include "util/strings.h"
#include "util/table.h"

int
main(int argc, char **argv)
{
    using namespace act;
    const auto options = report::parseOptions(argc, argv);
    report::Experiment experiment(
        "Tables 9/10/11", "embodied carbon of DRAM, SSD, and HDD");

    util::CsvWriter csv({"table", "technology", "g_co2_per_gb"});

    experiment.section("Table 9: DRAM");
    util::Table dram({"Technology", "g CO2/GB"});
    for (const auto &record :
         data::storageTable(data::StorageClass::Dram)) {
        dram.addRow(record.name, {record.cps.value()});
        csv.addRow({"dram", record.name,
                    util::formatSig(record.cps.value(), 5)});
    }
    std::cout << dram.render();

    experiment.section("Table 10: SSD");
    util::Table ssd({"Technology", "g CO2/GB"});
    for (const auto &record :
         data::storageTable(data::StorageClass::Ssd)) {
        ssd.addRow(record.name, {record.cps.value()});
        csv.addRow({"ssd", record.name,
                    util::formatSig(record.cps.value(), 5)});
    }
    std::cout << ssd.render();

    experiment.section("Table 11: HDD");
    util::Table hdd({"Technology", "Segment", "g CO2/GB"});
    for (const auto &record :
         data::storageTable(data::StorageClass::Hdd)) {
        hdd.addRow({record.name,
                    record.segment == data::StorageSegment::Enterprise
                        ? "Enterprise"
                        : "Consumer",
                    util::formatSig(record.cps.value(), 4)});
        csv.addRow({"hdd", record.name,
                    util::formatSig(record.cps.value(), 5)});
    }
    std::cout << hdd.render();

    experiment.claim("50nm DDR3", "600 g/GB",
                     util::formatSig(
                         data::storageOrDie("50nm DDR3").cps.value(),
                         3) + " g/GB");
    experiment.claim("V3 NAND TLC", "6.3 g/GB",
                     util::formatSig(
                         data::storageOrDie("V3 NAND TLC").cps.value(),
                         2) + " g/GB");
    experiment.claim("Exosx12 HDD", "1.14 g/GB",
                     util::formatSig(
                         data::storageOrDie("Exosx12").cps.value(), 3) +
                         " g/GB");

    if (options.csv)
        std::cout << csv.toString();
    return 0;
}
