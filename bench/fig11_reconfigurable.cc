/**
 * @file
 * Figure 11: CPU vs specialized ASIC ("Accel") vs embedded FPGA on an
 * SMIV-style 16 nm SoC across FIR, AES, and AI inference: per-app
 * speedups (top), AI energy (bottom left), embodied carbon (bottom
 * right), and the carbon-metric winners.
 */

#include <iostream>

#include "dse/scoreboard.h"
#include "mobile/reconfigurable.h"
#include "report/experiment.h"
#include "util/chart.h"
#include "util/csv.h"
#include "util/strings.h"
#include "util/table.h"

int
main(int argc, char **argv)
{
    using namespace act;
    const auto options = report::parseOptions(argc, argv);
    report::Experiment experiment(
        "Figure 11", "programmable vs specialized vs reconfigurable");

    const core::FabParams fab;
    const auto results = mobile::evaluateSubstrates(fab);

    experiment.section("speedup over CPU per application");
    util::Table speedups({"Substrate", "FIR", "AES", "AI", "Geomean"});
    util::CsvWriter csv({"substrate", "fir_speedup", "aes_speedup",
                         "ai_speedup", "embodied_g"});
    for (const auto &result : results) {
        std::vector<double> row;
        for (std::size_t app = 0; app < mobile::kNumSmivApps; ++app) {
            row.push_back(util::asSeconds(results[0].latency[app]) /
                          util::asSeconds(result.latency[app]));
        }
        row.push_back(result.geomean_speedup);
        speedups.addRow(result.name, row, 3);
        csv.addRow(result.name, {row[0], row[1], row[2],
                                 util::asGrams(result.embodied)});
    }
    std::cout << speedups.render();

    experiment.section("AI energy per inference");
    std::vector<util::BarEntry> energy_bars;
    const std::size_t ai =
        static_cast<std::size_t>(mobile::SmivApp::Ai);
    for (const auto &result : results) {
        energy_bars.push_back(
            {result.name, util::asMillijoules(result.energy[ai]), ""});
    }
    std::cout << util::renderBarChart("AI energy (mJ/inference)",
                                      energy_bars);

    experiment.section("embodied carbon per SoC configuration");
    std::vector<util::BarEntry> carbon_bars;
    for (const auto &result : results) {
        carbon_bars.push_back(
            {result.name, util::asGrams(result.embodied), ""});
    }
    std::cout << util::renderBarChart("Embodied carbon (g CO2)",
                                      carbon_bars);

    const dse::Scoreboard scoreboard(
        mobile::reconfigurableDesignSpace(fab));
    util::Table winners({"Metric", "Winner"});
    for (core::Metric metric : core::carbonMetrics()) {
        winners.addRow({std::string(core::metricName(metric)),
                        scoreboard.winner(metric)});
    }
    std::cout << winners.render();

    experiment.claim("ASIC AI speedup over CPU", "26x",
                     util::formatSig(
                         util::asSeconds(results[0].latency[ai]) /
                             util::asSeconds(results[1].latency[ai]),
                         3) + "x");
    experiment.claim("FPGA geomean speedup", "45x",
                     util::formatSig(results[2].geomean_speedup, 3) +
                         "x");
    experiment.claim("ASIC AI energy advantage over CPU", "44x",
                     util::formatSig(
                         util::asJoules(results[0].energy[ai]) /
                             util::asJoules(results[1].energy[ai]),
                         3) + "x");
    experiment.claim("CPU embodied advantage over ASIC / FPGA",
                     "1.3x / 1.8x",
                     util::formatSig(util::asGrams(results[1].embodied) /
                                     util::asGrams(results[0].embodied),
                                     2) + "x / " +
                         util::formatSig(
                             util::asGrams(results[2].embodied) /
                                 util::asGrams(results[0].embodied),
                             2) + "x");
    bool fpga_sweeps = true;
    for (core::Metric metric : core::carbonMetrics())
        fpga_sweeps = fpga_sweeps && scoreboard.winner(metric) == "FPGA";
    experiment.claim("FPGA wins CDP/CEP/C2EP/CE2P", "yes",
                     fpga_sweeps ? "yes" : "no");

    if (options.csv)
        std::cout << csv.toString();
    return 0;
}
