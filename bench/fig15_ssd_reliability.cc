/**
 * @file
 * Figure 15: improving SSD reliability (over-provisioning) to extend
 * hardware lifetime. Top: write amplification and lifetime vs the
 * over-provisioning factor, from both the analytical greedy-GC model
 * and the trace-driven FTL simulator. Bottom: effective embodied
 * carbon vs PF for first-life and second-life service periods.
 */

#include <iostream>

#include "report/experiment.h"
#include "ssd/ftl_sim.h"
#include "ssd/lifetime.h"
#include "ssd/wa_model.h"
#include "util/csv.h"
#include "util/strings.h"
#include "util/table.h"

int
main(int argc, char **argv)
{
    using namespace act;
    const auto options = report::parseOptions(argc, argv);
    report::Experiment experiment(
        "Figure 15", "SSD over-provisioning, lifetime, and recycling");

    experiment.section("top: WA and lifetime vs over-provisioning");
    util::Table top({"PF", "WA (analytical)", "WA (FTL sim)",
                     "Lifetime (years)"});
    util::CsvWriter csv({"pf", "wa_analytical", "wa_simulated",
                         "lifetime_years"});
    for (double pf : {0.04, 0.08, 0.12, 0.16, 0.22, 0.28, 0.34, 0.40}) {
        ssd::FtlConfig config;
        config.num_blocks = 192;
        config.pages_per_block = 32;
        config.over_provision = pf;
        config.user_writes = 150'000;
        const double simulated =
            ssd::FtlSimulator(config).run().writeAmplification();
        const double analytical = ssd::analyticalWriteAmplification(pf);
        const double lifetime = util::asYears(ssd::ssdLifetime(pf));
        top.addRow(util::formatFixed(pf * 100.0, 0) + "%",
                   {analytical, simulated, lifetime});
        csv.addRow(util::formatSig(pf, 3),
                   {analytical, simulated, lifetime});
    }
    std::cout << top.render();

    experiment.section("bottom: effective embodied carbon vs PF");
    ssd::ProvisioningStudyParams first_life;
    first_life.service_period = util::years(2.0);
    first_life.whole_devices = true;
    ssd::ProvisioningStudyParams second_life = first_life;
    second_life.service_period = util::years(4.0);

    util::Table bottom({"PF", "1st life devices", "1st life (norm)",
                        "2nd life devices", "2nd life (norm)"});
    const double baseline = util::asGrams(
        ssd::evaluateOverProvision(0.04, first_life).effective_embodied);
    for (double pf : {0.04, 0.08, 0.12, 0.16, 0.22, 0.28, 0.34, 0.40}) {
        const auto one = ssd::evaluateOverProvision(pf, first_life);
        const auto two = ssd::evaluateOverProvision(pf, second_life);
        bottom.addRow(
            util::formatFixed(pf * 100.0, 0) + "%",
            {one.devices,
             util::asGrams(one.effective_embodied) / baseline,
             two.devices,
             util::asGrams(two.effective_embodied) / baseline});
    }
    std::cout << bottom.render();

    const double pf_first = ssd::minimumPfForService(first_life);
    const double pf_second = ssd::minimumPfForService(second_life);
    experiment.claim("1st-life optimal over-provisioning", "16%",
                     util::formatFixed(pf_first * 100.0, 1) + "%");
    experiment.claim("2nd-life over-provisioning requirement", "34%",
                     util::formatFixed(pf_second * 100.0, 1) + "%");
    experiment.claim(
        "embodied reduction from enabling second life", "1.8x",
        util::formatSig(2.0 * (1.0 + pf_first) / (1.0 + pf_second), 3) +
            "x");

    if (options.csv)
        std::cout << csv.toString();
    return 0;
}
