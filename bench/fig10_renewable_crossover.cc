/**
 * @file
 * Figure 10: the impact of renewable energy during operation (top) and
 * during manufacturing (bottom) on the per-inference footprint of the
 * CPU/GPU/DSP provisioning options. Greener operation favors the lean
 * general-purpose CPU; greener fabs favor the specialized DSP.
 */

#include <iostream>

#include "mobile/provisioning.h"
#include "report/experiment.h"
#include "util/chart.h"
#include "util/csv.h"
#include "util/strings.h"

namespace {

using namespace act;

/** Per-inference totals for all three substrates. */
std::vector<util::StackedBarEntry>
evaluate(const core::FabParams &fab, const core::OperationalParams &use,
         util::Duration lifetime, double utilization)
{
    const auto results = mobile::provisioningTable(fab, use);
    const double inferences = mobile::inferencesAtUtilization(
        results[0], utilization, lifetime);
    std::vector<util::StackedBarEntry> bars;
    for (const auto &result : results) {
        const auto footprint =
            mobile::perInferenceFootprint(result, inferences, use);
        bars.push_back(
            {result.name,
             util::asMicrograms(footprint.embodied_allocated),
             util::asMicrograms(footprint.operational)});
    }
    return bars;
}

std::string
bestOf(const std::vector<util::StackedBarEntry> &bars)
{
    const util::StackedBarEntry *best = &bars.front();
    for (const auto &bar : bars) {
        if (bar.first + bar.second < best->first + best->second)
            best = &bar;
    }
    return best->label;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto options = report::parseOptions(argc, argv);
    report::Experiment experiment(
        "Figure 10",
        "renewable energy shifts the CPU/DSP provisioning optimum");

    const util::Duration lifetime = util::years(3.0);
    const double utilization = 0.05;
    util::CsvWriter csv({"sweep", "scenario", "design", "embodied_ug",
                         "operational_ug"});

    experiment.section("top: carbon intensity of operational energy "
                       "(fab fixed at Taiwan grid)");
    const core::FabParams taiwan_fab = core::FabParams::taiwanGrid();
    std::string use_coal_best;
    std::string use_free_best;
    for (data::EnergySource source :
         {data::EnergySource::Coal, data::EnergySource::Gas,
          data::EnergySource::Solar, data::EnergySource::CarbonFree}) {
        const auto use = core::OperationalParams::forSource(source);
        const auto bars =
            evaluate(taiwan_fab, use, lifetime, utilization);
        std::cout << util::renderStackedBarChart(
            "CI_use = " + std::string(data::sourceName(source)) +
                " (ug CO2/inference)",
            "embodied", "operational", bars);
        for (const auto &bar : bars) {
            csv.addRow({"use", std::string(data::sourceName(source)),
                        bar.label, util::formatSig(bar.first, 5),
                        util::formatSig(bar.second, 5)});
        }
        if (source == data::EnergySource::Coal)
            use_coal_best = bestOf(bars);
        if (source == data::EnergySource::CarbonFree)
            use_free_best = bestOf(bars);
    }
    experiment.claim("optimal under coal operation", "DSP",
                     use_coal_best);
    experiment.claim("optimal under carbon-free operation", "CPU",
                     use_free_best);

    experiment.section("bottom: carbon intensity of manufacturing "
                       "(operation fixed at renewable)");
    const auto solar_use =
        core::OperationalParams::forSource(data::EnergySource::Solar);
    std::string fab_coal_best;
    std::string fab_free_best;
    for (data::EnergySource source :
         {data::EnergySource::Coal, data::EnergySource::Gas,
          data::EnergySource::Solar, data::EnergySource::CarbonFree}) {
        const auto fab = core::FabParams::withIntensity(
            data::sourceIntensity(source));
        const auto bars =
            evaluate(fab, solar_use, lifetime, utilization);
        std::cout << util::renderStackedBarChart(
            "CI_fab = " + std::string(data::sourceName(source)) +
                " (ug CO2/inference)",
            "embodied", "operational", bars);
        for (const auto &bar : bars) {
            csv.addRow({"fab", std::string(data::sourceName(source)),
                        bar.label, util::formatSig(bar.first, 5),
                        util::formatSig(bar.second, 5)});
        }
        if (source == data::EnergySource::Coal)
            fab_coal_best = bestOf(bars);
        if (source == data::EnergySource::CarbonFree)
            fab_free_best = bestOf(bars);
    }
    experiment.claim("optimal under coal fab", "CPU", fab_coal_best);
    experiment.claim("optimal under carbon-free fab", "DSP",
                     fab_free_best);

    // The 1.8x reduction: at the carbon-free-operation end the CPU's
    // total is ~1.8x below the DSP's (pure embodied ratio).
    const auto free_bars = evaluate(
        taiwan_fab,
        core::OperationalParams::forSource(data::EnergySource::CarbonFree),
        lifetime, utilization);
    const double ratio = (free_bars[2].first + free_bars[2].second) /
                         (free_bars[0].first + free_bars[0].second);
    experiment.claim("CPU advantage at carbon-free operation", "1.8x",
                     util::formatSig(ratio, 3) + "x");

    if (options.csv)
        std::cout << csv.toString();
    return 0;
}
