/**
 * @file
 * Extension study: operational-carbon savings from scheduling
 * deferrable work into the greenest hours of diurnal grid profiles --
 * the time-varying-CI direction flagged in Appendix A.1.
 *
 * Runs on the pluggable policy API (core::schedule over
 * data::IntensitySeries); pinned byte-for-byte against
 * bench/golden/ by the compare_carbon_aware ctest, which is what
 * proves the series refactor output-identical to the original
 * 24-hour implementation.
 */

#include <iostream>

#include "core/scheduling.h"
#include "report/experiment.h"
#include "util/csv.h"
#include "util/strings.h"
#include "util/table.h"

int
main(int argc, char **argv)
{
    using namespace act;
    const auto options = report::parseOptions(argc, argv);
    report::Experiment experiment(
        "Extension: carbon-aware scheduling",
        "deferrable-load savings on diurnal grid profiles");

    core::DailyLoad load;
    load.baseline = util::watts(100.0);
    load.deferrable_energy = util::kilowattHours(2.0);
    load.deferrable_capacity = util::watts(500.0);

    const auto taiwan = data::regionIntensity(data::Region::Taiwan);

    experiment.section("hourly intensity, 25%-solar Taiwan grid");
    const auto solar = data::IntensitySeries::solarDay(taiwan, 0.25);
    util::Table hours({"Hour", "g CO2/kWh"});
    for (std::size_t h = 0; h < solar.size(); h += 3)
        hours.addRow(util::formatFixed(static_cast<double>(h), 0) +
                         ":00",
                     {solar.at(h).value()});
    std::cout << hours.render();

    experiment.section("daily OPCF: uniform vs carbon-aware schedule");
    util::Table table({"Profile", "Uniform (g)", "Carbon-aware (g)",
                       "deferrable saving"});
    util::CsvWriter csv({"profile", "uniform_g", "aware_g", "saving"});
    const auto add_profile = [&](const std::string &name,
                                 const data::IntensitySeries &series) {
        const auto uniform = core::schedule(
            load, series, core::policyByName("uniform"));
        const auto aware = core::schedule(
            load, series, core::policyByName("greedy"));
        const double aware_g =
            util::asGrams(aware.deferrable_footprint);
        const double saving =
            aware_g <= 0.0
                ? 1.0
                : util::asGrams(uniform.deferrable_footprint) / aware_g;
        table.addRow(name, {util::asGrams(uniform.total()),
                            util::asGrams(aware.total()), saving});
        csv.addRow(name, {util::asGrams(uniform.total()),
                          util::asGrams(aware.total()), saving});
        return saving;
    };

    add_profile("flat (static model)",
                data::IntensitySeries::flat(taiwan));
    const double s10 = add_profile(
        "solar 10%", data::IntensitySeries::solarDay(taiwan, 0.10));
    const double s25 = add_profile(
        "solar 25%", data::IntensitySeries::solarDay(taiwan, 0.25));
    const double s40 = add_profile(
        "solar 40%", data::IntensitySeries::solarDay(taiwan, 0.40));
    add_profile("wind 30%",
                data::IntensitySeries::windDay(taiwan, 0.30));
    std::cout << table.render();

    experiment.claim("saving grows with renewable share", "monotone",
                     (s10 < s25 && s25 < s40) ? "monotone"
                                              : "non-monotone");
    experiment.claim("deferrable saving at 25% solar", ">2x",
                     util::formatSig(s25, 3) + "x");
    experiment.note("time-shifting is a zero-hardware Reduce lever: "
                    "the same joules, scheduled into green hours, "
                    "emit a fraction of the carbon");

    if (options.csv)
        std::cout << csv.toString();
    return 0;
}
