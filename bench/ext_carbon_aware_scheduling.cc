/**
 * @file
 * Extension study: operational-carbon savings from scheduling
 * deferrable work into the greenest hours of diurnal grid profiles --
 * the time-varying-CI direction flagged in Appendix A.1.
 */

#include <iostream>

#include "core/scheduling.h"
#include "report/experiment.h"
#include "util/csv.h"
#include "util/strings.h"
#include "util/table.h"

int
main(int argc, char **argv)
{
    using namespace act;
    const auto options = report::parseOptions(argc, argv);
    report::Experiment experiment(
        "Extension: carbon-aware scheduling",
        "deferrable-load savings on diurnal grid profiles");

    core::DailyLoad load;
    load.baseline = util::watts(100.0);
    load.deferrable_energy = util::kilowattHours(2.0);
    load.deferrable_capacity = util::watts(500.0);

    const auto taiwan = data::regionIntensity(data::Region::Taiwan);

    experiment.section("hourly intensity, 25%-solar Taiwan grid");
    const auto solar = data::DiurnalProfile::solarGrid(taiwan, 0.25);
    util::Table hours({"Hour", "g CO2/kWh"});
    for (std::size_t h = 0; h < data::DiurnalProfile::kHours; h += 3)
        hours.addRow(util::formatFixed(static_cast<double>(h), 0) +
                         ":00",
                     {solar.at(h).value()});
    std::cout << hours.render();

    experiment.section("daily OPCF: uniform vs carbon-aware schedule");
    util::Table table({"Profile", "Uniform (g)", "Carbon-aware (g)",
                       "deferrable saving"});
    util::CsvWriter csv({"profile", "uniform_g", "aware_g", "saving"});
    const auto add_profile = [&](const std::string &name,
                                 const data::DiurnalProfile &profile) {
        const auto uniform = core::scheduleUniform(load, profile);
        const auto aware = core::scheduleCarbonAware(load, profile);
        const double saving = core::carbonAwareSaving(load, profile);
        table.addRow(name, {util::asGrams(uniform.total()),
                            util::asGrams(aware.total()), saving});
        csv.addRow(name, {util::asGrams(uniform.total()),
                          util::asGrams(aware.total()), saving});
        return saving;
    };

    add_profile("flat (static model)",
                data::DiurnalProfile::flat(taiwan));
    const double s10 = add_profile(
        "solar 10%", data::DiurnalProfile::solarGrid(taiwan, 0.10));
    const double s25 = add_profile(
        "solar 25%", data::DiurnalProfile::solarGrid(taiwan, 0.25));
    const double s40 = add_profile(
        "solar 40%", data::DiurnalProfile::solarGrid(taiwan, 0.40));
    add_profile("wind 30%",
                data::DiurnalProfile::windGrid(taiwan, 0.30));
    std::cout << table.render();

    experiment.claim("saving grows with renewable share", "monotone",
                     (s10 < s25 && s25 < s40) ? "monotone"
                                              : "non-monotone");
    experiment.claim("deferrable saving at 25% solar", ">2x",
                     util::formatSig(s25, 3) + "x");
    experiment.note("time-shifting is a zero-hardware Reduce lever: "
                    "the same joules, scheduled into green hours, "
                    "emit a fraction of the carbon");

    if (options.csv)
        std::cout << csv.toString();
    return 0;
}
