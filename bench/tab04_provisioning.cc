/**
 * @file
 * Table 4: mobile AI inference latency, power, operational footprint
 * per inference, and embodied footprint for the Snapdragon 845's CPU,
 * GPU, and DSP substrates (GPU/DSP rows label-corrected per the
 * paper's prose -- see DESIGN.md substitution #2), plus the break-even
 * reuse analysis of Section 6.1.
 */

#include <iostream>

#include "mobile/provisioning.h"
#include "report/experiment.h"
#include "util/csv.h"
#include "util/strings.h"
#include "util/table.h"

int
main(int argc, char **argv)
{
    using namespace act;
    const auto options = report::parseOptions(argc, argv);
    report::Experiment experiment(
        "Table 4", "CPU vs GPU vs DSP provisioning for mobile AI");

    const core::FabParams fab;
    const core::OperationalParams use;  // 300 g CO2/kWh US average
    const auto results = mobile::provisioningTable(fab, use);

    util::Table table({"Hardware", "Latency (ms)", "Power (W)",
                       "OPCF (ug CO2)", "ECF (g CO2)",
                       "ECF incl. host (g)"});
    util::CsvWriter csv({"hardware", "latency_ms", "power_w", "opcf_ug",
                         "ecf_g"});
    for (const auto &result : results) {
        table.addRow(result.name,
                     {util::asMilliseconds(result.latency),
                      util::asWatts(result.power),
                      util::asMicrograms(result.opcf_per_inference),
                      util::asGrams(result.ecf_block),
                      util::asGrams(result.ecf_total)});
        csv.addRow(result.name,
                   {util::asMilliseconds(result.latency),
                    util::asWatts(result.power),
                    util::asMicrograms(result.opcf_per_inference),
                    util::asGrams(result.ecf_block)});
    }
    std::cout << table.render();

    experiment.claim("CPU OPCF", "3.3 ug CO2",
                     util::formatSig(util::asMicrograms(
                         results[0].opcf_per_inference), 2) + " ug");
    experiment.claim("DSP OPCF", "1.5 ug CO2",
                     util::formatSig(util::asMicrograms(
                         results[2].opcf_per_inference), 2) + " ug");
    experiment.claim("CPU ECF", "253 g CO2",
                     util::formatSig(util::asGrams(results[0].ecf_total),
                                     3) + " g");
    experiment.claim("DSP energy advantage over CPU", "2.2x",
                     util::formatSig(results[0].energy /
                                     results[2].energy, 2) + "x");

    experiment.section("break-even lifetime utilization (3-year life)");
    const auto blocks = mobile::snapdragon845Blocks();
    util::Table breakeven({"Co-processor", "Break-even utilization %"});
    for (std::size_t i = 1; i < blocks.size(); ++i) {
        const auto utilization = mobile::breakEvenUtilization(
            blocks[i], blocks[0], fab, use, util::years(3.0));
        breakeven.addRow(blocks[i].name,
                         {utilization ? *utilization * 100.0 : -1.0});
    }
    std::cout << breakeven.render();
    const auto dsp = mobile::breakEvenUtilization(
        blocks[2], blocks[0], fab, use, util::years(3.0));
    const auto gpu = mobile::breakEvenUtilization(
        blocks[1], blocks[0], fab, use, util::years(3.0));
    experiment.claim("DSP break-even utilization", ">1%",
                     util::formatSig(*dsp * 100.0, 2) + "%");
    experiment.claim("GPU break-even utilization", ">5%",
                     util::formatSig(*gpu * 100.0, 2) + "%");

    if (options.csv)
        std::cout << csv.toString();
    return 0;
}
