/**
 * @file
 * Table 2: ACT's use-case dependent sustainability optimization
 * metrics, with a worked sensitivity demonstration showing how each
 * metric weighs embodied carbon against energy and delay.
 */

#include <iostream>

#include "core/metrics.h"
#include "report/experiment.h"
#include "util/strings.h"
#include "util/table.h"

int
main(int argc, char **argv)
{
    using namespace act;
    const auto options = report::parseOptions(argc, argv);
    (void)options;
    report::Experiment experiment(
        "Table 2", "use-case dependent sustainability metrics");

    util::Table table({"Metric", "Carbon-aware", "Use case"});
    for (core::Metric metric : core::allMetrics()) {
        table.addRow({std::string(core::metricName(metric)),
                      core::isCarbonAware(metric) ? "yes" : "no",
                      std::string(core::metricUseCase(metric))});
    }
    std::cout << table.render();

    experiment.section("sensitivity: halving each input per metric");
    core::DesignPoint base;
    base.name = "base";
    base.embodied = util::grams(100.0);
    base.energy = util::kilowattHours(1.0);
    base.delay = util::seconds(10.0);
    base.area = util::squareCentimeters(1.0);

    util::Table sensitivity({"Metric", "halve C", "halve E", "halve D"});
    for (core::Metric metric : core::allMetrics()) {
        const double reference = core::evaluateMetric(metric, base);
        core::DesignPoint half_c = base;
        half_c.embodied = base.embodied / 2.0;
        core::DesignPoint half_e = base;
        half_e.energy = base.energy / 2.0;
        core::DesignPoint half_d = base;
        half_d.delay = base.delay / 2.0;
        sensitivity.addRow(
            std::string(core::metricName(metric)),
            {core::evaluateMetric(metric, half_c) / reference,
             core::evaluateMetric(metric, half_e) / reference,
             core::evaluateMetric(metric, half_d) / reference},
            3);
    }
    std::cout << sensitivity.render();

    core::DesignPoint half_c = base;
    half_c.embodied = base.embodied / 2.0;
    experiment.claim(
        "C2EP rewards embodied cuts quadratically", "0.25x",
        util::formatSig(core::evaluateMetric(core::Metric::C2EP, half_c) /
                            core::evaluateMetric(core::Metric::C2EP,
                                                 base),
                        3) + "x");
    experiment.note("C2EP suits embodied-dominated devices; CE2P suits "
                    "operational-dominated ('brown' energy) devices");
    return 0;
}
