/**
 * @file
 * Tables 7 and 8: per-node fab energy and gas intensities for logic
 * manufacturing, and the raw-material procurement intensity.
 */

#include <iostream>

#include "data/fab_db.h"
#include "report/experiment.h"
#include "util/csv.h"
#include "util/strings.h"
#include "util/table.h"

int
main(int argc, char **argv)
{
    using namespace act;
    const auto options = report::parseOptions(argc, argv);
    report::Experiment experiment(
        "Tables 7/8", "fab energy/gas intensities and raw materials");

    const auto &db = data::FabDatabase::instance();

    experiment.section("Table 7: EPA and GPA per process node");
    util::Table table({"Node", "EPA (kWh/cm2)", "GPA 95% (g/cm2)",
                       "GPA 99% (g/cm2)"});
    util::CsvWriter csv({"node", "epa", "gpa95", "gpa99"});
    for (const auto &record : db.records()) {
        table.addRow(record.name,
                     {record.epa.value(), record.gpa_abated_95.value(),
                      record.gpa_abated_99.value()});
        csv.addRow(record.name,
                   {record.epa.value(), record.gpa_abated_95.value(),
                    record.gpa_abated_99.value()});
    }
    std::cout << table.render();

    experiment.section("Table 8: raw material procurement");
    util::Table mpa({"Source", "g CO2/cm2"});
    mpa.addRow("semiconductor LCA", {db.mpa().value()});
    std::cout << mpa.render();

    experiment.claim("28nm EPA", "0.90 kWh/cm2",
                     util::formatSig(db.epa(28.0).value(), 3) +
                         " kWh/cm2");
    experiment.claim("3nm EPA", "2.75 kWh/cm2",
                     util::formatSig(db.epa(3.0).value(), 3) +
                         " kWh/cm2");
    experiment.claim("7nm-EUV EPA", "2.15 kWh/cm2",
                     util::formatSig(
                         db.findByName("7nm-EUV")->epa.value(), 3) +
                         " kWh/cm2");
    experiment.claim("MPA", "~0.50 kg CO2/cm2",
                     util::formatSig(db.mpa().value() / 1000.0, 2) +
                         " kg CO2/cm2");

    if (options.csv)
        std::cout << csv.toString();
    return 0;
}
