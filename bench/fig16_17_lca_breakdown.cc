/**
 * @file
 * Figures 16 and 17: published LCA breakdowns for the Fairphone 3 and
 * Dell R740, framing where ACT's IC-level modeling applies (ICs are
 * ~70% / ~80% of the embodied footprint, but other components are
 * non-negligible).
 */

#include <iostream>

#include "core/embodied.h"
#include "report/experiment.h"
#include "util/chart.h"
#include "util/csv.h"
#include "util/strings.h"

int
main(int argc, char **argv)
{
    using namespace act;
    const auto options = report::parseOptions(argc, argv);
    report::Experiment experiment(
        "Figures 16/17", "published LCA breakdowns vs ACT's IC scope");

    const auto &db = data::DeviceDatabase::instance();
    const core::EmbodiedModel model;
    util::CsvWriter csv({"device", "component", "share"});

    for (const char *name : {"Fairphone 3", "Dell R740"}) {
        const auto device = db.byNameOrDie(name);
        experiment.section(device.name + " published breakdown");
        std::vector<util::BarEntry> bars;
        for (const auto &entry : device.lca_breakdown) {
            bars.push_back({entry.label, entry.share * 100.0, "%"});
            csv.addRow({device.name, entry.label,
                        util::formatSig(entry.share, 4)});
        }
        std::cout << util::renderBarChart(
            device.name + " LCA breakdown (% of footprint)", bars);

        const double act_ic_kg =
            util::asKilograms(model.evaluate(device).total());
        const double production_kg =
            util::asKilograms(device.lca.productionFootprint());
        experiment.claim(
            device.name + std::string(" IC share of production"),
            std::string(name) == std::string("Fairphone 3") ? "~70%"
                                                            : "~80%",
            util::formatFixed(device.lca.ic_share_of_production * 100.0,
                              0) + "%");
        experiment.note(device.name + ": ACT IC bottom-up " +
                        util::formatSig(act_ic_kg, 3) +
                        " kg of " + util::formatSig(production_kg, 3) +
                        " kg production footprint");
    }

    experiment.note("ACT characterizes the IC slice only; PCBs, "
                    "connectors, chassis, displays, and batteries need "
                    "complementary LCA data when reporting full-device "
                    "footprints (paper Section A.3 caveat)");

    if (options.csv)
        std::cout << csv.toString();
    return 0;
}
